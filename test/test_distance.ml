module Ast = Sqlir.Ast
module Interval = Distance.Interval
module AA = Distance.Access_area

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let parse = Sqlir.Parser.parse

(* ---- Jaccard ---- *)

let jac = Distance.Jaccard.distance_strings

let test_jaccard () =
  check_float "identical" 0.0 (jac [ "a"; "b" ] [ "b"; "a" ]);
  check_float "disjoint" 1.0 (jac [ "a" ] [ "b" ]);
  check_float "half" 0.5 (jac [ "a"; "b"; "c" ] [ "a"; "b"; "d" ]);
  check_float "both empty" 0.0 (jac [] []);
  check_float "one empty" 1.0 (jac [ "a" ] []);
  check_float "duplicates ignored" 0.0 (jac [ "a"; "a"; "b" ] [ "a"; "b"; "b" ]);
  check_float "similarity" 1.0
    (Distance.Jaccard.similarity ~compare:String.compare [ "x" ] [ "x" ])

let jaccard_properties =
  let arb = QCheck.(pair (list_of_size (Gen.int_range 0 8) (string_of_size (Gen.int_range 0 3)))
                      (list_of_size (Gen.int_range 0 8) (string_of_size (Gen.int_range 0 3)))) in
  [ QCheck.Test.make ~name:"jaccard symmetric" ~count:300 arb (fun (a, b) ->
        jac a b = jac b a);
    QCheck.Test.make ~name:"jaccard bounded" ~count:300 arb (fun (a, b) ->
        let d = jac a b in
        d >= 0.0 && d <= 1.0);
    QCheck.Test.make ~name:"jaccard identity" ~count:300
      QCheck.(list (string_of_size (Gen.int_range 0 3)))
      (fun a -> jac a a = 0.0);
    QCheck.Test.make ~name:"jaccard triangle inequality" ~count:300
      QCheck.(triple (list (string_of_size (Gen.int_range 0 2)))
                (list (string_of_size (Gen.int_range 0 2)))
                (list (string_of_size (Gen.int_range 0 2))))
      (fun (a, b, c) -> jac a c <= jac a b +. jac b c +. 1e-9) ]

(* ---- intervals ---- *)

let test_interval_basics () =
  check_bool "empty" true (Interval.is_empty Interval.empty);
  check_bool "all" true (Interval.is_all Interval.all);
  check_bool "point mem" true (Interval.mem 5.0 (Interval.point 5.0));
  check_bool "closed mem" true (Interval.mem 2.0 (Interval.closed 1.0 3.0));
  check_bool "open excludes endpoint" false
    (Interval.mem 5.0 (Interval.upper ~incl:false 5.0));
  check_bool "closed includes endpoint" true
    (Interval.mem 5.0 (Interval.upper ~incl:true 5.0));
  check_bool "reversed is empty" true
    (Interval.is_empty (Interval.closed 3.0 1.0));
  check_bool "degenerate closed ok" false (Interval.is_empty (Interval.closed 3.0 3.0))

let test_interval_algebra () =
  let a = Interval.closed 1.0 5.0 and b = Interval.closed 3.0 8.0 in
  check_bool "overlap" true (Interval.overlaps a b);
  check_bool "union mem" true (Interval.mem 7.0 (Interval.union a b));
  check_bool "inter left out" false (Interval.mem 2.0 (Interval.inter a b));
  check_bool "inter mem" true (Interval.mem 4.0 (Interval.inter a b));
  (* merge across touching bounds *)
  let u = Interval.union (Interval.closed 1.0 2.0) (Interval.closed 2.0 3.0) in
  check_int "merged" 1 (List.length (Interval.intervals u));
  (* open-open at the same point does NOT merge: 2 is excluded *)
  let v = Interval.union (Interval.of_ival
                            { Interval.lo = Some { v = 1.0; incl = true };
                              hi = Some { v = 2.0; incl = false } })
            (Interval.of_ival
               { Interval.lo = Some { v = 2.0; incl = false };
                 hi = Some { v = 3.0; incl = true } })
  in
  check_int "not merged" 2 (List.length (Interval.intervals v));
  check_bool "2 not member" false (Interval.mem 2.0 v);
  (* complement *)
  let c = Interval.complement (Interval.closed 1.0 2.0) in
  check_bool "complement below" true (Interval.mem 0.0 c);
  check_bool "complement above" true (Interval.mem 3.0 c);
  check_bool "complement boundary" false (Interval.mem 1.0 c);
  check_bool "complement of all" true (Interval.is_empty (Interval.complement Interval.all));
  check_bool "complement of empty" true (Interval.is_all (Interval.complement Interval.empty));
  (* double complement is identity *)
  let w = Interval.union (Interval.closed 1.0 2.0) (Interval.point 9.0) in
  check_bool "involution" true (Interval.equal w (Interval.complement (Interval.complement w)));
  (* the dense-semantics motivating case: (5, inf) vs (-inf, 6) overlap *)
  check_bool "dense overlap" true
    (Interval.overlaps (Interval.upper ~incl:false 5.0) (Interval.lower ~incl:false 6.0));
  check_bool "dense disjoint" false
    (Interval.overlaps (Interval.upper ~incl:false 5.0) (Interval.lower ~incl:false 5.0));
  check_bool "touching closed overlap" true
    (Interval.overlaps (Interval.upper ~incl:true 5.0) (Interval.lower ~incl:true 5.0))

let test_interval_monotone_map () =
  (* strictly increasing endpoint maps preserve every relation we use *)
  let f x = (x *. 3.0) +. 7.0 in
  let a = Interval.union (Interval.closed 1.0 2.0) (Interval.upper ~incl:false 10.0) in
  let b = Interval.lower ~incl:true 1.5 in
  let fa = Interval.map_endpoints f a and fb = Interval.map_endpoints f b in
  check_bool "overlap preserved" (Interval.overlaps a b) (Interval.overlaps fa fb);
  check_bool "equality preserved" (Interval.equal a a)
    (Interval.equal fa (Interval.map_endpoints f a))

let interval_properties =
  let bound = QCheck.Gen.(map2 (fun v incl -> { Interval.v = float_of_int v; incl })
                            (int_range (-20) 20) bool) in
  let gen_set =
    QCheck.Gen.(map
                  (fun ivs ->
                    List.fold_left
                      (fun acc (lo, hi) ->
                        Interval.union acc
                          (Interval.of_ival { Interval.lo = Some lo; hi = Some hi }))
                      Interval.empty ivs)
                  (list_size (int_range 0 4) (pair bound bound)))
  in
  let arb = QCheck.make ~print:Interval.to_string gen_set in
  [ QCheck.Test.make ~name:"complement involution" ~count:300 arb (fun s ->
        Interval.equal s (Interval.complement (Interval.complement s)));
    QCheck.Test.make ~name:"union commutative" ~count:300 (QCheck.pair arb arb)
      (fun (a, b) -> Interval.equal (Interval.union a b) (Interval.union b a));
    QCheck.Test.make ~name:"inter via de morgan consistent" ~count:300
      (QCheck.pair arb arb)
      (fun (a, b) ->
        Interval.equal (Interval.inter a b)
          (Interval.complement
             (Interval.union (Interval.complement a) (Interval.complement b))));
    QCheck.Test.make ~name:"membership decides overlap on samples" ~count:300
      (QCheck.triple arb arb (QCheck.int_range (-25) 25))
      (fun (a, b, x) ->
        let x = float_of_int x in
        (* any common member implies overlap *)
        (not (Interval.mem x a && Interval.mem x b)) || Interval.overlaps a b);
    QCheck.Test.make ~name:"monotone map preserves overlap" ~count:300
      (QCheck.pair arb arb)
      (fun (a, b) ->
        let f x = (x *. 2.0) +. 1.0 in
        Interval.overlaps a b
        = Interval.overlaps (Interval.map_endpoints f a) (Interval.map_endpoints f b)) ]

(* ---- features ---- *)

let test_features () =
  (* the paper's Example 5 *)
  let q = parse "SELECT a1 FROM r WHERE a2 > 5" in
  let feats = Distance.Feature.of_query q in
  check_int "three features" 3 (List.length feats);
  check_bool "select feature" true
    (List.mem (Distance.Feature.Fselect "a1") feats);
  check_bool "from feature" true (List.mem (Distance.Feature.Ffrom "r") feats);
  check_bool "where drops constant" true
    (List.mem (Distance.Feature.Fwhere ("a2", ">")) feats);
  (* constants don't matter *)
  let q2 = parse "SELECT a1 FROM r WHERE a2 > 99999" in
  check_bool "same features" true
    (Distance.Feature.of_query q = Distance.Feature.of_query q2);
  check_float "structure distance zero" 0.0 (Distance.D_structure.distance q q2);
  (* every clause contributes *)
  let q3 =
    parse
      "SELECT DISTINCT x, COUNT(*) FROM r JOIN s ON r.a = s.b WHERE c IN (1,2) \
       GROUP BY x HAVING COUNT(*) > 1 ORDER BY x DESC LIMIT 5"
  in
  let f3 = Distance.Feature.of_query q3 in
  check_bool "distinct" true (List.mem Distance.Feature.Fdistinct f3);
  check_bool "join" true (List.mem (Distance.Feature.Fjoin (Ast.Inner, "s", "r.a", "s.b")) f3);
  check_bool "group" true (List.mem (Distance.Feature.Fgroup_by "x") f3);
  check_bool "limit" true (List.mem Distance.Feature.Flimit f3);
  check_bool "order" true (List.mem (Distance.Feature.Forder_by ("x", Ast.Desc)) f3)

(* ---- token distance ---- *)

let test_token_distance () =
  check_float "identical" 0.0 (Distance.D_token.distance "SELECT a FROM r" "SELECT a FROM r");
  check_float "case-insensitive keywords" 0.0
    (Distance.D_token.distance "select a from r" "SELECT a FROM r");
  check_bool "shared constant counts" true
    (Distance.D_token.distance "SELECT a FROM r WHERE x = 5"
       "SELECT b FROM r WHERE y = 5"
     < Distance.D_token.distance "SELECT a FROM r WHERE x = 5"
         "SELECT b FROM r WHERE y = 6");
  let d = Distance.D_token.distance_q (parse "SELECT a FROM r") (parse "SELECT a FROM r WHERE b = 1") in
  check_bool "subset query closer than disjoint" true (d < 1.0 && d > 0.0)

(* ---- edit distance (extension) ---- *)

let test_edit_distance () =
  check_int "char identical" 0 (Distance.D_edit.char_distance "kitten" "kitten");
  check_int "char classic" 3 (Distance.D_edit.char_distance "kitten" "sitting");
  check_int "char to empty" 6 (Distance.D_edit.char_distance "kitten" "");
  check_int "token identical" 0
    (Distance.D_edit.token_distance "SELECT a FROM r" "select a from r");
  check_int "token one substitution" 1
    (Distance.D_edit.token_distance "SELECT a FROM r" "SELECT b FROM r");
  check_int "token insertion" 2
    (Distance.D_edit.token_distance "SELECT a FROM r" "SELECT a, b FROM r");
  (* fused LIMIT counts as one token *)
  check_int "limit fused" 1
    (Distance.D_edit.token_distance "SELECT a FROM r LIMIT 5" "SELECT a FROM r LIMIT 9");
  check_float "normalized self" 0.0 (Distance.D_edit.distance "SELECT a FROM r" "SELECT a FROM r");
  check_bool "normalized bounded" true
    (let d = Distance.D_edit.distance "SELECT a FROM r" "SELECT x, y FROM s WHERE z = 1" in
     d > 0.0 && d <= 1.0)

let edit_properties =
  let pairs = QCheck.pair Testkit.arbitrary_query Testkit.arbitrary_query in
  [ QCheck.Test.make ~name:"edit symmetric" ~count:200 pairs (fun (a, b) ->
        Distance.D_edit.distance_q a b = Distance.D_edit.distance_q b a);
    QCheck.Test.make ~name:"edit bounded" ~count:200 pairs (fun (a, b) ->
        let d = Distance.D_edit.distance_q a b in
        d >= 0.0 && d <= 1.0);
    QCheck.Test.make ~name:"edit self zero" ~count:100 Testkit.arbitrary_query
      (fun a -> Distance.D_edit.distance_q a a = 0.0);
    QCheck.Test.make ~name:"unnormalized edit triangle inequality" ~count:150
      (QCheck.triple Testkit.arbitrary_query Testkit.arbitrary_query
         Testkit.arbitrary_query)
      (fun (a, b, c) ->
        let d x y =
          Distance.D_edit.token_distance (Sqlir.Printer.to_string x)
            (Sqlir.Printer.to_string y)
        in
        d a c <= d a b + d b c);
    (* the preservation argument: any injective token renaming leaves the
       token edit distance unchanged *)
    QCheck.Test.make ~name:"edit invariant under injective token renaming"
      ~count:150 pairs
      (fun (a, b) ->
        let rename s =
          String.concat " "
            (List.map (fun t -> "T" ^ Crypto.Sha256.hex t)
               (Distance.D_token.fuse (Sqlir.Lexer.tokenize s)))
        in
        let sa = Sqlir.Printer.to_string a and sb = Sqlir.Printer.to_string b in
        Distance.D_edit.token_distance sa sb
        = Distance.D_edit.token_distance (rename sa) (rename sb)) ]

(* ---- clause-based (Aligon) distance ---- *)

let test_clause_distance () =
  let q1 = parse "SELECT a, SUM(x) FROM r WHERE b = 1 GROUP BY a" in
  let q2 = parse "SELECT a, SUM(x) FROM r WHERE b = 99 GROUP BY a" in
  (* constants differ, components identical *)
  check_float "constants invisible" 0.0 (Distance.D_clause.distance q1 q2);
  let q3 = parse "SELECT a, SUM(x) FROM r WHERE b = 1 GROUP BY c" in
  let d13 = Distance.D_clause.distance q1 q3 in
  check_bool "group-by change dominates" true (d13 >= 0.4);
  let q4 = parse "SELECT z FROM s WHERE w > 0 GROUP BY z" in
  check_float "disjoint queries" 1.0 (Distance.D_clause.distance q1 q4);
  (* component extraction *)
  check_bool "projection set" true
    (Distance.D_clause.projection_set q1 = [ "a"; "sum(x)" ]);
  check_bool "selection drops constants" true
    (Distance.D_clause.selection_set q1 = [ "b =" ]);
  check_bool "group set" true (Distance.D_clause.group_by_set q1 = [ "a" ]);
  (* custom weights *)
  let only_proj = { Distance.D_clause.w_projection = 1.0; w_group_by = 0.0; w_selection = 0.0 } in
  check_float "projection-only weighting" 0.0
    (Distance.D_clause.distance ~weights:only_proj q1 q3);
  Alcotest.check_raises "weights validated"
    (Invalid_argument "D_clause: weights sum to zero") (fun () ->
      ignore
        (Distance.D_clause.distance
           ~weights:{ Distance.D_clause.w_projection = 0.0; w_group_by = 0.0;
                      w_selection = 0.0 }
           q1 q2))

(* ---- access areas ---- *)

let area q name = List.assoc name (AA.of_query (parse q))

let test_access_areas () =
  (* range predicate *)
  let a = area "SELECT x FROM r WHERE ra BETWEEN 10 AND 20" "ra" in
  (match a with
   | AA.Num i -> check_bool "between area" true (Interval.mem 15.0 i && not (Interval.mem 25.0 i))
   | _ -> Alcotest.fail "expected Num");
  (* attribute mentioned only in SELECT: whole domain *)
  check_bool "select-only is All" true (AA.equal (area "SELECT x FROM r WHERE y = 1" "x") AA.All);
  (* equality on string *)
  (match area "SELECT x FROM r WHERE c = 'foo'" "c" with
   | AA.Sfinite [ "foo" ] -> ()
   | a -> Alcotest.failf "expected point set, got %s" (AA.to_string a));
  (* Neq is cofinite *)
  (match area "SELECT x FROM r WHERE c <> 'foo'" "c" with
   | AA.Scofinite [ "foo" ] -> ()
   | a -> Alcotest.failf "expected cofinite, got %s" (AA.to_string a));
  (* OR unions, AND intersects *)
  let u = area "SELECT x FROM r WHERE ra < 5 OR ra > 10" "ra" in
  (match u with
   | AA.Num i ->
     check_bool "union" true (Interval.mem 0.0 i && Interval.mem 11.0 i && not (Interval.mem 7.0 i))
   | _ -> Alcotest.fail "expected Num");
  let i = area "SELECT x FROM r WHERE ra > 5 AND ra < 10" "ra" in
  (match i with
   | AA.Num iv -> check_bool "intersection" true (Interval.mem 7.0 iv && not (Interval.mem 5.0 iv))
   | _ -> Alcotest.fail "expected Num");
  (* NOT pushes to atoms; constraint on another attribute stays All *)
  check_bool "not other attr" true
    (AA.equal (area "SELECT x FROM r WHERE NOT (y = 1)" "x") AA.All);
  (* IN list of ints *)
  (match area "SELECT x FROM r WHERE n IN (1, 5, 9)" "n" with
   | AA.Num iv -> check_bool "in points" true (Interval.mem 5.0 iv && not (Interval.mem 2.0 iv))
   | _ -> Alcotest.fail "expected Num");
  (* LIKE is opaque *)
  (match area "SELECT x FROM r WHERE c LIKE 'a%'" "c" with
   | AA.Opaque [ atom ] -> check_bool "atom mentions pattern" true (atom = "like:a%")
   | a -> Alcotest.failf "expected opaque, got %s" (AA.to_string a))

let test_delta () =
  let x = 0.5 in
  check_float "equal" 0.0 (AA.delta ~x AA.All AA.All);
  check_float "overlap" 0.5
    (AA.delta ~x (AA.Num (Interval.closed 1.0 5.0)) (AA.Num (Interval.closed 4.0 9.0)));
  check_float "disjoint" 1.0
    (AA.delta ~x (AA.Num (Interval.closed 1.0 2.0)) (AA.Num (Interval.closed 4.0 9.0)));
  check_float "empty vs all" 1.0 (AA.delta ~x AA.Empty AA.All);
  check_float "cofinite overlap" 0.5
    (AA.delta ~x (AA.Scofinite [ "a" ]) (AA.Scofinite [ "b" ]));
  check_float "finite vs its complement" 1.0
    (AA.delta ~x (AA.Sfinite [ "a" ]) (AA.Scofinite [ "a" ]))

let test_access_distance () =
  (* identical queries: distance 0 *)
  let q = parse "SELECT x FROM r WHERE ra BETWEEN 1 AND 5" in
  check_float "self distance" 0.0 (Distance.D_access.distance q q);
  (* Definition 5 averaging *)
  let q1 = parse "SELECT x FROM r WHERE ra BETWEEN 0 AND 10 AND dec = 3" in
  let q2 = parse "SELECT x FROM r WHERE ra BETWEEN 5 AND 15 AND dec = 4" in
  (* attrs: x (All=All -> 0), ra (overlap -> 0.5), dec (disjoint -> 1) *)
  check_float "averaged" ((0.0 +. 0.5 +. 1.0) /. 3.0) (Distance.D_access.distance q1 q2);
  let per = Distance.D_access.per_attribute q1 q2 in
  check_int "three attrs" 3 (List.length per);
  check_float "custom x" ((0.0 +. 0.25 +. 1.0) /. 3.0)
    (Distance.D_access.distance ~x:0.25 q1 q2);
  Alcotest.check_raises "x bounds" (Invalid_argument "D_access: x must be in (0,1)")
    (fun () -> ignore (Distance.D_access.distance ~x:1.0 q1 q2))

(* ---- result distance ---- *)

let test_result_distance () =
  let schema = Minidb.Schema.make ~rel:"r" [ ("a", Minidb.Value.Tint); ("b", Minidb.Value.Tint) ] in
  let table =
    Minidb.Table.of_rows schema
      (List.init 10 (fun i -> [| Minidb.Value.Vint i; Minidb.Value.Vint (i * 2) |]))
  in
  let db = Minidb.Database.add_table Minidb.Database.empty table in
  let d = Distance.D_result.distance db (parse "SELECT a FROM r WHERE a < 5")
      (parse "SELECT a FROM r WHERE a < 5") in
  check_float "same query" 0.0 d;
  let d2 = Distance.D_result.distance db
      (parse "SELECT a FROM r WHERE a < 5") (parse "SELECT a FROM r WHERE a >= 5") in
  check_float "disjoint results" 1.0 d2;
  let d3 = Distance.D_result.distance db
      (parse "SELECT a FROM r WHERE a < 6") (parse "SELECT a FROM r WHERE a < 5") in
  check_bool "overlap strict" true (d3 > 0.0 && d3 < 1.0);
  (* the distance is about result CONTENT, not query text *)
  let d4 = Distance.D_result.distance db
      (parse "SELECT a FROM r WHERE a <= 4") (parse "SELECT a FROM r WHERE a < 5") in
  check_float "different text same tuples" 0.0 d4

(* ---- measure dispatch ---- *)

let test_measure () =
  check_bool "of_string" true (Distance.Measure.of_string "token" = Some Distance.Measure.Token);
  check_bool "of_string access alias" true
    (Distance.Measure.of_string "access" = Some Distance.Measure.Access);
  check_bool "unknown" true (Distance.Measure.of_string "bogus" = None);
  check_int "all measures" 4 (List.length Distance.Measure.all);
  check_bool "result needs db" true (Distance.Measure.needs_db_content Distance.Measure.Result);
  check_bool "access needs domains" true (Distance.Measure.needs_domains Distance.Measure.Access);
  (try
     ignore
       (Distance.Measure.compute Distance.Measure.default_ctx Distance.Measure.Result
          (parse "SELECT a FROM r") (parse "SELECT a FROM r"));
     Alcotest.fail "expected typed invariant error"
   with Fault.Error.E (Fault.Error.Invariant _) -> ());
  (match
     Distance.Measure.matrix_r Distance.Measure.default_ctx Distance.Measure.Result
       [ parse "SELECT a FROM r" ]
   with
   | Ok _ -> Alcotest.fail "matrix_r without db must error"
   | Error [ Fault.Error.Invariant _ ] -> ()
   | Error _ -> Alcotest.fail "matrix_r without db: wrong error shape")

(* metric-ish properties of measures over generated queries *)
let measure_properties =
  let ctx = Distance.Measure.default_ctx in
  let pairs = QCheck.pair Testkit.arbitrary_query Testkit.arbitrary_query in
  List.concat_map
    (fun m ->
      let name = Distance.Measure.to_string m in
      [ QCheck.Test.make ~name:(name ^ " symmetric") ~count:200 pairs
          (fun (a, b) ->
            Distance.Measure.compute ctx m a b = Distance.Measure.compute ctx m b a);
        QCheck.Test.make ~name:(name ^ " bounded in [0,1]") ~count:200 pairs
          (fun (a, b) ->
            let d = Distance.Measure.compute ctx m a b in
            d >= 0.0 && d <= 1.0);
        QCheck.Test.make ~name:(name ^ " self distance 0") ~count:200
          Testkit.arbitrary_query
          (fun a -> Distance.Measure.compute ctx m a a = 0.0) ])
    [ Distance.Measure.Token; Distance.Measure.Structure;
      Distance.Measure.Access; Distance.Measure.Edit;
      Distance.Measure.Clause ]

(* ---- PR-5: bit-parallel / banded edit kernels vs the classic DP ---- *)

module DE = Distance.D_edit

let kernel_properties =
  (* lengths up to 150 cross the 62-symbol block boundary, so the
     multi-block carry chain is exercised, not just the 1-block fast
     path *)
  let arr = QCheck.(array_of_size (QCheck.Gen.int_range 0 150) (int_range 0 40)) in
  let pairs = QCheck.pair arr arr in
  [ QCheck.Test.make ~name:"myers = classic DP (incl. >1 block)" ~count:400 pairs
      (fun (a, b) -> DE.myers ~alphabet:41 a b = DE.levenshtein_ints a b);
    QCheck.Test.make ~name:"myers via precomputed peq = classic DP" ~count:400
      pairs
      (fun (a, b) ->
        let peq = DE.myers_peq ~alphabet:41 a in
        let m = Array.length a in
        (if m = 0 then Array.length b
         else DE.myers_with_peq ~alphabet:41 ~m ~peq b)
        = DE.levenshtein_ints a b);
    QCheck.Test.make ~name:"distance_at_most exact, both sides of the bound"
      ~count:400
      (QCheck.triple arr arr (QCheck.int_range 0 160))
      (fun ((a, b, bound) : int array * int array * int) ->
        let d = DE.levenshtein_ints a b in
        match DE.distance_at_most ~bound a b with
        | Some d' -> d' = d && d <= bound
        | None -> d > bound) ]

(* ---- PR-5: the feature-precomputed matrix path is bit-identical to the
   seed's per-pair evaluation, for every measure and pool size ---- *)

let feature_queries =
  List.map parse
    [ "SELECT a FROM r WHERE a < 5";
      "SELECT a FROM r WHERE a < 5 AND b = 2";
      "SELECT a, b FROM r WHERE b BETWEEN 1 AND 9 ORDER BY a LIMIT 20";
      "SELECT COUNT(*) FROM r GROUP BY b HAVING COUNT(*) > 2";
      "SELECT r.a, s.c FROM r JOIN s ON r.a = s.a WHERE s.c IN (1, 2, 3)";
      "SELECT DISTINCT b FROM r WHERE a >= 10 OR b < 0";
      "SELECT a FROM r WHERE a LIKE 'x%' AND b IS NOT NULL";
      "SELECT MAX(a) FROM r WHERE b <> 4" ]

let with_pool domains f =
  let p = Parallel.Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown p) (fun () -> f p)

let max_abs_diff a b =
  let d = ref 0.0 in
  Array.iteri
    (fun i row ->
      Array.iteri (fun j v -> d := Float.max !d (Float.abs (v -. b.(i).(j)))) row)
    a;
  !d

let test_features_matrix_identity () =
  let ctx = Distance.Measure.default_ctx in
  let qs = Array.of_list feature_queries in
  let n = Array.length qs in
  List.iter
    (fun m ->
      let name = Distance.Measure.to_string m in
      let seed =
        Array.init n (fun i ->
            Array.init n (fun j -> Distance.Measure.compute ctx m qs.(i) qs.(j)))
      in
      List.iter
        (fun domains ->
          with_pool domains (fun pool ->
              let fast = Distance.Measure.matrix ~pool ctx m feature_queries in
              check_bool
                (Printf.sprintf "%s matrix bit-identical (domains=%d)" name
                   domains)
                true
                (max_abs_diff seed fast = 0.0)))
        [ 1; 3 ])
    [ Distance.Measure.Token; Distance.Measure.Structure;
      Distance.Measure.Edit; Distance.Measure.Clause;
      Distance.Measure.Access ]

let test_features_evaluators () =
  let ctx = Distance.Measure.default_ctx in
  let qs = Array.of_list feature_queries in
  let t = Distance.Features.build qs in
  let n = Distance.Features.length t in
  Alcotest.(check int) "table length" (Array.length qs) n;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let pair name fast seedf =
        check_bool (Printf.sprintf "%s (%d,%d)" name i j) true (fast = seedf)
      in
      pair "token" (Distance.Features.token t i j)
        (Distance.Measure.compute ctx Distance.Measure.Token qs.(i) qs.(j));
      pair "edit" (Distance.Features.edit t i j)
        (Distance.Measure.compute ctx Distance.Measure.Edit qs.(i) qs.(j));
      (* edit_within agrees with the exact normalized comparison at
         several thresholds, including ones the band rejects *)
      List.iter
        (fun eps ->
          check_bool
            (Printf.sprintf "edit_within eps=%.2f (%d,%d)" eps i j)
            (Distance.Features.edit t i j <= eps)
            (Distance.Features.edit_within t ~eps i j))
        [ 0.0; 0.1; 0.3; 0.5; 0.9; 1.0 ]
    done
  done

let test_features_metrics () =
  Obs.set_enabled true;
  let builds = Obs.Registry.counter "kitdpe.distance.features.builds" in
  let reuse = Obs.Registry.counter "kitdpe.distance.features.reuse" in
  let b0 = Obs.Metric.value builds and r0 = Obs.Metric.value reuse in
  let n = List.length feature_queries in
  let _m =
    Distance.Measure.matrix Distance.Measure.default_ctx Distance.Measure.Token
      feature_queries
  in
  Alcotest.(check int) "O(n) feature builds" n (Obs.Metric.value builds - b0);
  Alcotest.(check int) "n^2 - n pair evals reuse the table"
    ((n * n) - n)
    (Obs.Metric.value reuse - r0)

let test_features_fault () =
  Fault.Inject.disarm_all ();
  (match Fault.Inject.arm_spec "distance.features.build=nth:2" with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Fun.protect ~finally:Fault.Inject.disarm_all (fun () ->
      (match Distance.Features.build_r (Array.of_list feature_queries) with
       | Ok _ -> Alcotest.fail "build_r must surface the injected fault"
       | Error [ Fault.Error.Task_failed { label = "features.build"; index = 2; _ } ] -> ()
       | Error _ -> Alcotest.fail "build_r: wrong error shape");
      match
        Distance.Measure.matrix_r Distance.Measure.default_ctx
          Distance.Measure.Token feature_queries
      with
      | Ok _ -> Alcotest.fail "matrix_r must surface the injected fault"
      | Error errs ->
        check_bool "matrix_r error tagged features.build" true
          (List.exists
             (function
               | Fault.Error.Task_failed { label = "features.build"; _ } -> true
               | _ -> false)
             errs));
  (* disarmed: clean build again *)
  match Distance.Features.build_r (Array.of_list feature_queries) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "clean build after disarm"

let () =
  Alcotest.run "distance"
    [ ("jaccard",
       Alcotest.test_case "unit" `Quick test_jaccard
       :: List.map (fun t -> QCheck_alcotest.to_alcotest t) jaccard_properties);
      ("interval",
       [ Alcotest.test_case "basics" `Quick test_interval_basics;
         Alcotest.test_case "algebra" `Quick test_interval_algebra;
         Alcotest.test_case "monotone map" `Quick test_interval_monotone_map ]
       @ List.map (fun t -> QCheck_alcotest.to_alcotest t) interval_properties);
      ("features", [ Alcotest.test_case "extraction" `Quick test_features ]);
      ("token", [ Alcotest.test_case "token distance" `Quick test_token_distance ]);
      ("edit",
       Alcotest.test_case "edit distance" `Quick test_edit_distance
       :: List.map (fun t -> QCheck_alcotest.to_alcotest t) edit_properties);
      ("clause", [ Alcotest.test_case "aligon distance" `Quick test_clause_distance ]);
      ("access",
       [ Alcotest.test_case "areas" `Quick test_access_areas;
         Alcotest.test_case "delta" `Quick test_delta;
         Alcotest.test_case "distance" `Quick test_access_distance ]);
      ("result", [ Alcotest.test_case "result distance" `Quick test_result_distance ]);
      ("measure",
       Alcotest.test_case "dispatch" `Quick test_measure
       :: List.map (fun t -> QCheck_alcotest.to_alcotest t) measure_properties);
      ("edit kernels",
       List.map (fun t -> QCheck_alcotest.to_alcotest t) kernel_properties);
      ("feature table",
       [ Alcotest.test_case "matrix bit-identical to seed" `Quick
           test_features_matrix_identity;
         Alcotest.test_case "pair evaluators" `Quick test_features_evaluators;
         Alcotest.test_case "builds/reuse metrics" `Quick test_features_metrics;
         Alcotest.test_case "fault point surfaces" `Quick test_features_fault ]) ]
