module Value = Minidb.Value

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let v_int n = Value.Vint n
let v_str s = Value.Vstring s

(* ---- aux model ---- *)

let test_aux_model () =
  let aux = Attack.Aux_model.of_values
      [ v_str "a"; v_str "a"; v_str "a"; v_str "b"; v_str "b"; v_str "c"; Value.Vnull ]
  in
  check_int "total skips nulls" 6 (Attack.Aux_model.total aux);
  check_int "support" 3 (Attack.Aux_model.support_size aux);
  check_bool "mode" true (Attack.Aux_model.mode aux = Some (v_str "a"));
  (match Attack.Aux_model.ranked aux with
   | (v1, 3) :: (v2, 2) :: (v3, 1) :: [] ->
     check_bool "rank order" true (v1 = v_str "a" && v2 = v_str "b" && v3 = v_str "c")
   | _ -> Alcotest.fail "ranked");
  let ints = Attack.Aux_model.of_values (List.init 100 (fun i -> v_int i)) in
  check_bool "quantile low" true (Attack.Aux_model.quantile ints 0.005 = Some (v_int 0));
  check_bool "quantile high" true
    (match Attack.Aux_model.quantile ints 0.999 with
     | Some (Value.Vint n) -> n >= 95
     | _ -> false);
  check_bool "empty aux" true
    (Attack.Aux_model.mode (Attack.Aux_model.of_values []) = None)

(* ---- attacks on synthetic ciphertexts ---- *)

(* a deterministic "encryption" for testing the attacks themselves *)
let det_cipher v = v_str ("ct:" ^ Value.to_string v)

let test_frequency_attack () =
  (* skewed distribution: frequency analysis should recover everything *)
  let plains =
    List.concat
      [ List.init 10 (fun _ -> v_str "common");
        List.init 5 (fun _ -> v_str "medium");
        List.init 1 (fun _ -> v_str "rare") ]
  in
  let pairs = List.map (fun p -> (p, det_cipher p)) plains in
  let aux = Attack.Aux_model.of_values plains in
  let o = Attack.Attacks.frequency aux pairs in
  check_int "cells" 16 o.Attack.Attacks.cells;
  check_float "full recovery on skewed DET" 1.0 o.Attack.Attacks.rate;
  (* uniform distribution: rank matching is no better than luck, but it is
     deterministic, so some fixed fraction is still recovered *)
  let uni = List.init 20 (fun i -> v_str (Printf.sprintf "u%02d" i)) in
  (* a deterministic cipher whose output order scrambles the input order —
     [det_cipher] keeps the lexicographic order and would let the rank
     tie-break cheat *)
  let scrambled p = v_str (string_of_int (Hashtbl.hash (Value.to_string p))) in
  let upairs = List.map (fun p -> (p, scrambled p)) uni in
  let uaux = Attack.Aux_model.of_values uni in
  let uo = Attack.Attacks.frequency uaux upairs in
  check_bool "uniform weaker" true (uo.Attack.Attacks.rate < 1.0)

let test_sorting_attack () =
  (* order-preserving "encryption": multiply by 7 and add 3 *)
  let plains = List.init 50 (fun i -> v_int i) in
  let pairs = List.map (fun v -> match v with
      | Value.Vint n -> (v, v_int ((n * 7) + 3))
      | _ -> assert false) plains in
  let aux = Attack.Aux_model.of_values plains in
  let o = Attack.Attacks.sorting aux pairs in
  check_float "sorting attack nails known uniform distribution" 1.0 o.Attack.Attacks.rate;
  (* frequency attack on the same OPE data is much weaker: all frequencies
     are 1, so rank-matching is arbitrary *)
  let f = Attack.Attacks.frequency aux pairs in
  check_bool "sorting beats frequency on OPE" true
    (o.Attack.Attacks.rate >= f.Attack.Attacks.rate)

let test_known_plaintext () =
  let n = 100 in
  let plains = List.init n (fun i -> v_int i) in
  let enc v = (v * 7) + 3 in
  let pairs = List.map (fun v -> match v with
      | Value.Vint x -> (v, v_int (enc x)) | _ -> assert false) plains in
  let aux = Attack.Aux_model.of_values plains in
  let anchors_every k =
    List.filteri (fun i _ -> i mod k = 0) pairs
  in
  let rate k =
    (Attack.Attacks.known_plaintext_ope aux ~anchors:(anchors_every k) pairs)
      .Attack.Attacks.rate
  in
  (* anchor spacing 1: everything is an anchor -> certain recovery *)
  check_float "all anchors" 1.0 (rate 1);
  (* more anchors, more recovery *)
  check_bool "monotone in anchors" true (rate 5 >= rate 10 && rate 10 >= rate 25);
  check_bool "some recovery with sparse anchors" true (rate 25 > 0.0);
  (* no anchors: falls back to the most frequent candidate overall *)
  let none = (Attack.Attacks.known_plaintext_ope aux ~anchors:[] pairs).Attack.Attacks.rate in
  check_bool "no anchors is weak" true (none <= 0.05)

let test_mode_guess () =
  let plains =
    List.concat [ List.init 6 (fun _ -> v_str "top"); List.init 4 (fun i -> v_str (string_of_int i)) ]
  in
  (* probabilistic encryption: every ciphertext distinct *)
  let pairs = List.mapi (fun i p -> (p, v_str (Printf.sprintf "r%d" i))) plains in
  let aux = Attack.Aux_model.of_values plains in
  let o = Attack.Attacks.mode_guess aux pairs in
  check_float "mode share" 0.6 o.Attack.Attacks.rate

let test_for_class_dispatch () =
  let plains = List.init 10 (fun i -> v_int (i / 3)) in
  let pairs = List.map (fun p -> (p, det_cipher p)) plains in
  let aux = Attack.Aux_model.of_values plains in
  List.iter
    (fun cls ->
      let o = Attack.Attacks.for_class cls aux pairs in
      check_bool "rate bounded" true (o.Attack.Attacks.rate >= 0.0 && o.Attack.Attacks.rate <= 1.0))
    Dpe.Taxonomy.all

(* ---- end-to-end: encrypted log and database ---- *)

let keyring = Crypto.Keyring.create ~master:"attack-suite"

let log_for m seed =
  Workload.Gen_query.skyserver_log
    { Workload.Gen_query.n = 40; templates = 4; seed;
      caps = Workload.Gen_query.caps_for_measure m }

let test_attack_log_monotonic () =
  (* the Fig. 1 claim, measured: recovery under the structure scheme (PROB
     constants) <= token scheme (DET constants) <= a result scheme that
     includes OPE constants *)
  let m = Distance.Measure.Structure in
  let log = log_for m "atk" in
  let rate measure =
    let scheme = Dpe.Selector.select measure (Dpe.Log_profile.of_log log) in
    let enc = Dpe.Encryptor.create keyring scheme in
    let cipher = Dpe.Encryptor.encrypt_log enc log in
    let class_of a =
      Dpe.Scheme.ppe_of_const_class (Dpe.Scheme.class_for_attr scheme a)
    in
    let report =
      Attack.Harness.attack_log ~label:(Distance.Measure.to_string measure)
        ~class_of ~plain:log ~cipher
    in
    report.Attack.Harness.overall.Attack.Attacks.rate
  in
  let structure = rate Distance.Measure.Structure in
  let token = rate Distance.Measure.Token in
  check_bool "structure (PROB) at most token (DET)" true (structure <= token);
  check_bool "structure rate sane" true (structure >= 0.0 && structure < 1.0);
  check_bool "token leaks something on skewed constants" true (token > 0.0)

let test_attack_database () =
  let m = Distance.Measure.Result in
  let log = log_for m "atk-db" in
  let scheme = Dpe.Selector.select m (Dpe.Log_profile.of_log log) in
  let enc = Dpe.Encryptor.create keyring scheme in
  let db = Workload.Gen_db.skyserver ~seed:"atk-db" ~rows:150 in
  let encdb = Dpe.Db_encryptor.encrypt_database enc db in
  let class_of a = Dpe.Scheme.ppe_of_const_class (Dpe.Scheme.class_for_attr scheme a) in
  let report =
    Attack.Harness.attack_database ~label:"db" ~class_of ~plain:db ~cipher:encdb
      ~cipher_rel_of:(Dpe.Encryptor.encrypt_rel enc)
      ~cipher_attr_of:(Dpe.Encryptor.encrypt_attr_name enc)
  in
  check_bool "rows present" true (List.length report.Attack.Harness.rows > 0);
  check_bool "overall bounded" true
    (report.Attack.Harness.overall.Attack.Attacks.rate >= 0.0
     && report.Attack.Harness.overall.Attack.Attacks.rate <= 1.0);
  (* an OPE column with a known distribution leaks a lot *)
  let ope_rows =
    List.filter
      (fun r ->
        r.Attack.Harness.cls = Dpe.Taxonomy.OPE
        || r.Attack.Harness.cls = Dpe.Taxonomy.JOIN_OPE)
      report.Attack.Harness.rows
  in
  check_bool "ope columns exist in this workload" true (ope_rows <> []);
  List.iter
    (fun r ->
      check_bool
        (Printf.sprintf "OPE column %s leaks more than guessing" r.Attack.Harness.attr)
        true
        (r.Attack.Harness.outcome.Attack.Attacks.rate > 0.05))
    ope_rows

let test_attack_names () =
  let log = log_for Distance.Measure.Token "names" in
  let scheme = Dpe.Selector.select Distance.Measure.Token (Dpe.Log_profile.of_log log) in
  let enc = Dpe.Encryptor.create keyring scheme in
  let cipher = Dpe.Encryptor.encrypt_log enc log in
  let r = Attack.Harness.attack_names ~label:"names" ~plain:log ~cipher in
  check_int "two namespaces" 2 (List.length r.Attack.Harness.rows);
  (* the dominant relation name is recovered by frequency analysis: a known
     weakness of deterministic name pseudonyms the harness must exhibit *)
  let rel_row = List.find (fun row -> row.Attack.Harness.attr = "rel") r.Attack.Harness.rows in
  check_bool "relation names leak heavily" true
    (rel_row.Attack.Harness.outcome.Attack.Attacks.rate > 0.5);
  check_bool "overall bounded" true
    (r.Attack.Harness.overall.Attack.Attacks.rate <= 1.0)

let test_constants_extraction () =
  let log = List.map Sqlir.Parser.parse
      [ "SELECT a FROM r WHERE b = 1 AND c IN (2, 3)";
        "SELECT a FROM r WHERE d BETWEEN 4 AND 5 OR e LIKE 'x%'";
        "SELECT a FROM r GROUP BY a HAVING COUNT(*) > 9" ]
  in
  let consts = Attack.Harness.constants_by_attr log in
  (* b=1, c∈{2,3}, d∈{4,5}, e like — the COUNT threshold 9 is skipped *)
  check_int "constants counted" 6 (List.length consts);
  check_bool "count threshold skipped" true
    (not (List.exists (fun (_, c) -> c = Sqlir.Ast.Cint 9) consts))

let () =
  Alcotest.run "attack"
    [ ("aux", [ Alcotest.test_case "aux model" `Quick test_aux_model ]);
      ("attacks",
       [ Alcotest.test_case "frequency" `Quick test_frequency_attack;
         Alcotest.test_case "sorting" `Quick test_sorting_attack;
         Alcotest.test_case "known-plaintext anchors" `Quick test_known_plaintext;
         Alcotest.test_case "mode guess" `Quick test_mode_guess;
         Alcotest.test_case "class dispatch" `Quick test_for_class_dispatch ]);
      ("end-to-end",
       [ Alcotest.test_case "log attack monotone in leakage" `Slow test_attack_log_monotonic;
         Alcotest.test_case "database attack" `Slow test_attack_database;
         Alcotest.test_case "name recovery" `Slow test_attack_names;
         Alcotest.test_case "constants extraction" `Quick test_constants_extraction ]) ]
