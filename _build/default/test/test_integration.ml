(* End-to-end integration: the full outsourcing pipeline of the paper.

   data owner: generate log (+ db) -> profile -> select scheme -> encrypt
   service provider: compute distances over ciphertexts -> run mining
   verification: mining results on plaintext and ciphertext are identical *)

module M = Distance.Measure

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let keyring = Crypto.Keyring.create ~master:"integration"

let pipeline m ~seed ~n =
  let log =
    Workload.Gen_query.skyserver_log
      { Workload.Gen_query.n; templates = 4; seed;
        caps = Workload.Gen_query.caps_for_measure m }
  in
  let profile = Dpe.Log_profile.of_log log in
  let scheme = Dpe.Selector.select m profile in
  let enc = Dpe.Encryptor.create keyring scheme in
  let enc_log = Dpe.Encryptor.encrypt_log enc log in
  let plain_db, cipher_db =
    if m = M.Result then begin
      let db = Workload.Gen_db.skyserver ~seed ~rows:100 in
      (Some db, Some (Dpe.Db_encryptor.encrypt_database enc db))
    end
    else (None, None)
  in
  let plain_ctx = { M.db = plain_db; x = 0.5 } in
  let cipher_ctx = { M.db = cipher_db; x = 0.5 } in
  let dp = Dpe.Verdict.distance_matrix plain_ctx m log in
  let dc = Dpe.Verdict.distance_matrix cipher_ctx m enc_log in
  (log, dp, dc)

let all_mining_agree dp dc =
  let db_p = Mining.Dbscan.run { Mining.Dbscan.eps = 0.45; min_pts = 3 } dp in
  let db_c = Mining.Dbscan.run { Mining.Dbscan.eps = 0.45; min_pts = 3 } dc in
  let km_p = Mining.Kmedoids.run { Mining.Kmedoids.k = 4; max_iter = 40 } dp in
  let km_c = Mining.Kmedoids.run { Mining.Kmedoids.k = 4; max_iter = 40 } dc in
  let h_p = Mining.Hier.cut_k 4 dp in
  let h_c = Mining.Hier.cut_k 4 dc in
  let o_p = Mining.Outlier.run { Mining.Outlier.p = 0.95; d = 0.8 } dp in
  let o_c = Mining.Outlier.run { Mining.Outlier.p = 0.95; d = 0.8 } dc in
  Mining.Labeling.same_partition db_p db_c
  && Mining.Labeling.same_partition km_p km_c
  && Mining.Labeling.same_partition h_p h_c
  && o_p = o_c

let test_pipeline m () =
  let _, dp, dc = pipeline m ~seed:("pipe-" ^ M.to_string m) ~n:30 in
  check_bool "matrices valid" true
    (Mining.Dist_matrix.validate dp = Ok () && Mining.Dist_matrix.validate dc = Ok ());
  check_bool "distances identical" true (Mining.Dist_matrix.max_abs_diff dp dc = 0.0);
  check_bool "all four algorithms agree" true (all_mining_agree dp dc)

(* clustering over the encrypted log recovers the planted templates about
   as well as over the plaintext log — and identically so *)
let test_ground_truth_recovery () =
  (* token distance sees constants, so it separates templates that share a
     query shape; structure distance intentionally cannot *)
  let p = { Workload.Gen_query.n = 40; templates = 3; seed = "gt";
            caps = Workload.Gen_query.caps_for_measure M.Token } in
  let labelled = Workload.Gen_query.skyserver_log_labelled p in
  let truth = Array.of_list (List.map fst labelled) in
  let log = List.map snd labelled in
  let scheme = Dpe.Selector.select M.Token (Dpe.Log_profile.of_log log) in
  let enc = Dpe.Encryptor.create keyring scheme in
  let dp = Dpe.Verdict.distance_matrix M.default_ctx M.Token log in
  let dc =
    Dpe.Verdict.distance_matrix M.default_ctx M.Token
      (Dpe.Encryptor.encrypt_log enc log)
  in
  let labels_p = Mining.Hier.cut_k 3 dp in
  let labels_c = Mining.Hier.cut_k 3 dc in
  check_bool "same labels" true (Mining.Labeling.same_partition labels_p labels_c);
  let purity = Mining.Labeling.purity ~truth labels_p in
  check_bool "clusters reflect templates" true (purity >= 0.8);
  let db_p = Mining.Dbscan.run { Mining.Dbscan.eps = 0.4; min_pts = 3 } dp in
  let db_c = Mining.Dbscan.run { Mining.Dbscan.eps = 0.4; min_pts = 3 } dc in
  check_bool "dbscan same labels" true (Mining.Labeling.same_partition db_p db_c);
  check_bool "dbscan recovers templates" true
    (Mining.Labeling.purity ~truth db_p >= 0.8)

(* §V future work: association-rule mining over the encrypted log gives
   structurally identical rules (supports/confidences match exactly) *)
let test_association_rules () =
  let log =
    Workload.Gen_query.skyserver_log
      { Workload.Gen_query.n = 40; templates = 3; seed = "rules";
        caps = Workload.Gen_query.caps_full }
  in
  let scheme = Dpe.Selector.select M.Token (Dpe.Log_profile.of_log log) in
  let enc = Dpe.Encryptor.create keyring scheme in
  let transactions l =
    List.map (fun q -> Distance.D_token.tokens (Sqlir.Printer.to_string q)) l
  in
  let params =
    { Mining.Apriori.min_support = 0.3; min_confidence = 0.8; max_size = 3 }
  in
  let plain_rules = Mining.Apriori.rules params (transactions log) in
  let cipher_rules =
    Mining.Apriori.rules params (transactions (Dpe.Encryptor.encrypt_log enc log))
  in
  check_bool "some rules found" true (List.length plain_rules > 0);
  check_int "same rule count" (List.length plain_rules) (List.length cipher_rules);
  (* the numeric profile of the rule sets is identical: sizes, supports and
     confidences match as multisets (items themselves are pseudonymized) *)
  let shape r =
    (List.length r.Mining.Apriori.antecedent,
     List.length r.Mining.Apriori.consequent,
     r.Mining.Apriori.support, r.Mining.Apriori.confidence)
  in
  check_bool "rule shapes identical" true
    (List.sort compare (List.map shape plain_rules)
     = List.sort compare (List.map shape cipher_rules));
  (* frequent itemsets have identical support spectra too *)
  let supports l =
    Mining.Apriori.frequent_itemsets params (transactions l)
    |> List.map (fun (i, s) -> (List.length i, s))
    |> List.sort compare
  in
  check_bool "itemset spectra identical" true
    (supports log = supports (Dpe.Encryptor.encrypt_log enc log))

(* cluster quality (not only membership) is identical on both sides *)
let test_silhouette_preserved () =
  let log =
    Workload.Gen_query.skyserver_log
      { Workload.Gen_query.n = 30; templates = 3; seed = "sil";
        caps = Workload.Gen_query.caps_full }
  in
  let scheme = Dpe.Selector.select M.Structure (Dpe.Log_profile.of_log log) in
  let enc = Dpe.Encryptor.create keyring scheme in
  let dp = Dpe.Verdict.distance_matrix M.default_ctx M.Structure log in
  let dc =
    Dpe.Verdict.distance_matrix M.default_ctx M.Structure
      (Dpe.Encryptor.encrypt_log enc log)
  in
  let lp = Mining.Hier.cut_k 3 dp and lc = Mining.Hier.cut_k 3 dc in
  Alcotest.(check (float 1e-12)) "silhouette identical"
    (Mining.Silhouette.score dp lp) (Mining.Silhouette.score dc lc)

(* session-level mining: DTW over per-query structure distances gives the
   same session clustering on ciphertext as on plaintext *)
let test_session_mining () =
  let sessions =
    Workload.Gen_query.skyserver_sessions
      { Workload.Gen_query.n = 12; templates = 3; seed = "sess";
        caps = Workload.Gen_query.caps_full }
      ~length:5
  in
  let truth = Array.of_list (List.map fst sessions) in
  let plain = List.map snd sessions in
  let flat = List.concat plain in
  let scheme = Dpe.Selector.select M.Structure (Dpe.Log_profile.of_log flat) in
  let enc = Dpe.Encryptor.create keyring scheme in
  let cipher = List.map (List.map (Dpe.Encryptor.encrypt_query enc)) plain in
  let session_matrix logs =
    let arr = Array.of_list (List.map Array.of_list logs) in
    let cost a b = Distance.D_structure.distance a b in
    Mining.Dist_matrix.of_fun (Array.length arr) (fun i j ->
        Mining.Dtw.normalized ~cost arr.(i) arr.(j))
  in
  let dp = session_matrix plain and dc = session_matrix cipher in
  check_bool "session distances identical" true
    (Mining.Dist_matrix.max_abs_diff dp dc = 0.0);
  let lp = Mining.Hier.cut_k 3 dp and lc = Mining.Hier.cut_k 3 dc in
  check_bool "session clustering identical" true
    (Mining.Labeling.same_partition lp lc);
  check_bool "sessions cluster by template" true
    (Mining.Labeling.purity ~truth lp >= 0.7)

(* security: scheme floors dominate CryptDB, and attacks confirm it *)
let test_security_end_to_end () =
  let log =
    Workload.Gen_query.skyserver_log
      { Workload.Gen_query.n = 40; templates = 4; seed = "sec";
        caps = Workload.Gen_query.caps_full }
  in
  let profile = Dpe.Log_profile.of_log log in
  let plan = Cryptdb.Planner.replay log in
  List.iter
    (fun m ->
      let scheme = Dpe.Selector.select m profile in
      let cmp = Cryptdb.Baseline.compare_scheme ~profile scheme plan in
      check_int (M.to_string m ^ ": never weaker than CryptDB") 0
        cmp.Cryptdb.Baseline.worse)
    M.all;
  (* attack rates: structure scheme leaks less than token scheme *)
  let attack_rate m =
    let scheme = Dpe.Selector.select m profile in
    let enc = Dpe.Encryptor.create keyring scheme in
    let cipher = Dpe.Encryptor.encrypt_log enc log in
    let class_of a = Dpe.Scheme.ppe_of_const_class (Dpe.Scheme.class_for_attr scheme a) in
    (Attack.Harness.attack_log ~label:"x" ~class_of ~plain:log ~cipher)
      .Attack.Harness.overall.Attack.Attacks.rate
  in
  check_bool "PROB constants leak at most DET constants" true
    (attack_rate M.Structure <= attack_rate M.Token)

(* decryption: the key owner can invert everything the pipeline produced *)
let test_full_decryption () =
  let log =
    Workload.Gen_query.skyserver_log
      { Workload.Gen_query.n = 20; templates = 3; seed = "dec";
        caps = Workload.Gen_query.caps_for_measure M.Result }
  in
  let scheme = Dpe.Selector.select M.Result (Dpe.Log_profile.of_log log) in
  let enc = Dpe.Encryptor.create keyring scheme in
  let db = Workload.Gen_db.skyserver ~seed:"dec" ~rows:50 in
  let encdb = Dpe.Db_encryptor.encrypt_database enc db in
  List.iter
    (fun q ->
      match Dpe.Encryptor.decrypt_query enc (Dpe.Encryptor.encrypt_query enc q) with
      | Ok q' -> check_bool "query decrypts" true (Sqlir.Ast.equal_query q q')
      | Error e -> Alcotest.failf "decrypt error: %s" e)
    log;
  List.iter
    (fun rel ->
      let plain_schema = Minidb.Table.schema (Minidb.Database.find_exn db rel) in
      let enc_table =
        Minidb.Database.find_exn encdb (Dpe.Encryptor.encrypt_rel enc rel)
      in
      match Dpe.Db_encryptor.decrypt_table enc ~plain_schema enc_table with
      | Ok t ->
        check_bool (rel ^ " decrypts") true
          (Minidb.Table.rows t = Minidb.Table.rows (Minidb.Database.find_exn db rel))
      | Error e -> Alcotest.failf "table decrypt error: %s" e)
    (Minidb.Database.relations db)

let () =
  Alcotest.run "integration"
    [ ("pipeline",
       [ Alcotest.test_case "token" `Slow (test_pipeline M.Token);
         Alcotest.test_case "structure" `Slow (test_pipeline M.Structure);
         Alcotest.test_case "access-area" `Slow (test_pipeline M.Access);
         Alcotest.test_case "edit (extension)" `Slow (test_pipeline M.Edit);
         Alcotest.test_case "result" `Slow (test_pipeline M.Result) ]);
      ("mining",
       [ Alcotest.test_case "ground truth recovery" `Slow test_ground_truth_recovery;
         Alcotest.test_case "association rules (§V)" `Slow test_association_rules;
         Alcotest.test_case "silhouette preserved" `Slow test_silhouette_preserved;
         Alcotest.test_case "session mining (DTW)" `Slow test_session_mining ]);
      ("security",
       [ Alcotest.test_case "dominates CryptDB" `Slow test_security_end_to_end ]);
      ("decryption", [ Alcotest.test_case "full inversion" `Slow test_full_decryption ]) ]
