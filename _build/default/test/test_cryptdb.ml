let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Sqlir.Parser.parse

let test_onion () =
  let c = Cryptdb.Onion.fresh "x" in
  check_bool "fresh is PROB" true
    (Cryptdb.Onion.exposed_class c = Dpe.Taxonomy.PROB);
  let c = Cryptdb.Onion.peel_eq ~cross_column:false c in
  check_bool "eq exposes DET" true (Cryptdb.Onion.exposed_class c = Dpe.Taxonomy.DET);
  let c = Cryptdb.Onion.peel_ord ~cross_column:false c in
  check_bool "ord dominates" true (Cryptdb.Onion.exposed_class c = Dpe.Taxonomy.OPE);
  (* peeling is monotone: equality again cannot re-wrap *)
  let c2 = Cryptdb.Onion.peel_eq ~cross_column:false c in
  check_bool "no re-wrap" true (Cryptdb.Onion.exposed_class c2 = Dpe.Taxonomy.OPE);
  let j = Cryptdb.Onion.peel_eq ~cross_column:true (Cryptdb.Onion.fresh "y") in
  check_bool "join layer" true (Cryptdb.Onion.exposed_class j = Dpe.Taxonomy.JOIN);
  let jo = Cryptdb.Onion.peel_ord ~cross_column:true (Cryptdb.Onion.fresh "z") in
  check_bool "join-ope layer" true
    (Cryptdb.Onion.exposed_class jo = Dpe.Taxonomy.JOIN_OPE);
  (* once JOIN, a within-column peel keeps JOIN (cannot go back to DET) *)
  let j2 = Cryptdb.Onion.peel_eq ~cross_column:false j in
  check_bool "join sticky" true (Cryptdb.Onion.exposed_class j2 = Dpe.Taxonomy.JOIN);
  let h = Cryptdb.Onion.expose_add (Cryptdb.Onion.fresh "w") in
  (* HOM and PROB share the top security row; either is acceptable here *)
  check_int "hom exposed stays top row" 5
    (Dpe.Taxonomy.security_level (Cryptdb.Onion.exposed_class h))

let log =
  List.map parse
    [ "SELECT a FROM r WHERE b = 1";
      "SELECT a FROM r WHERE c > 5";
      "SELECT SUM(f) FROM r";
      "SELECT a FROM r JOIN s ON r.x = s.y";
      "SELECT g FROM r ORDER BY g LIMIT 3";
      "SELECT b, COUNT(*) FROM r GROUP BY b" ]

let test_planner () =
  let plan = Cryptdb.Planner.replay log in
  let exposed = Cryptdb.Planner.exposed plan in
  check_bool "eq column DET" true (exposed "b" = Dpe.Taxonomy.DET);
  check_bool "range column OPE" true (exposed "c" = Dpe.Taxonomy.OPE);
  check_bool "sum column HOM" true (exposed "f" = Dpe.Taxonomy.HOM);
  check_bool "join columns JOIN" true
    (exposed "x" = Dpe.Taxonomy.JOIN && exposed "y" = Dpe.Taxonomy.JOIN);
  check_bool "order column OPE" true (exposed "g" = Dpe.Taxonomy.OPE);
  check_bool "projection-only column untouched" true
    (exposed "a" = Dpe.Taxonomy.PROB);
  check_bool "unknown column PROB" true (exposed "zzz" = Dpe.Taxonomy.PROB);
  check_bool "trace nonempty" true (List.length plan.Cryptdb.Planner.trace > 0);
  (* replaying the same query twice adds no second event for it *)
  let plan2 = Cryptdb.Planner.replay (log @ log) in
  check_int "idempotent adjustments"
    (List.length plan.Cryptdb.Planner.trace)
    (List.length plan2.Cryptdb.Planner.trace)

let test_baseline_comparison () =
  (* the paper's claim: per-measure KIT-DPE schemes are never weaker, and
     strictly stronger somewhere, than CryptDB executing the same log *)
  let profile = Dpe.Log_profile.of_log log in
  let plan = Cryptdb.Planner.replay log in
  List.iter
    (fun m ->
      let scheme = Dpe.Selector.select m profile in
      let cmp = Cryptdb.Baseline.compare_scheme ~profile scheme plan in
      check_int (Distance.Measure.to_string m ^ " never worse") 0 cmp.Cryptdb.Baseline.worse)
    Distance.Measure.all;
  let structure =
    Cryptdb.Baseline.compare_scheme ~profile
      (Dpe.Selector.select Distance.Measure.Structure profile) plan
  in
  check_bool "structure strictly better somewhere" true
    (structure.Cryptdb.Baseline.strictly_better > 0);
  let access =
    Cryptdb.Baseline.compare_scheme ~profile
      (Dpe.Selector.select Distance.Measure.Access profile) plan
  in
  (* the paper's §IV-C observation: the SUM attribute is PROB under the
     access scheme but HOM-exposed under CryptDB — same security row, but
     the selected-only and order-only attributes do win strictly *)
  check_bool "access strictly better somewhere" true
    (access.Cryptdb.Baseline.strictly_better > 0)

let test_workload_scale () =
  let wlog =
    Workload.Gen_query.skyserver_log
      { Workload.Gen_query.n = 40; templates = 4; seed = "cryptdb";
        caps = Workload.Gen_query.caps_full }
  in
  let plan = Cryptdb.Planner.replay wlog in
  check_bool "columns discovered" true (List.length plan.Cryptdb.Planner.columns >= 4);
  (* events reference real query indices *)
  check_bool "trace indices in range" true
    (List.for_all
       (fun e ->
         e.Cryptdb.Planner.query_index >= 0 && e.Cryptdb.Planner.query_index < 40)
       plan.Cryptdb.Planner.trace)

let () =
  Alcotest.run "cryptdb"
    [ ("onion", [ Alcotest.test_case "layers" `Quick test_onion ]);
      ("planner", [ Alcotest.test_case "replay" `Quick test_planner ]);
      ("baseline",
       [ Alcotest.test_case "comparison" `Quick test_baseline_comparison;
         Alcotest.test_case "workload scale" `Quick test_workload_scale ]) ]
