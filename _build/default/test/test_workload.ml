let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_gen_db () =
  let db = Workload.Gen_db.skyserver ~seed:"t" ~rows:100 in
  check_bool "photoobj exists" true (Minidb.Database.find db "photoobj" <> None);
  check_bool "specobj exists" true (Minidb.Database.find db "specobj" <> None);
  check_int "photoobj rows" 100
    (Minidb.Table.cardinality (Minidb.Database.find_exn db "photoobj"));
  check_int "specobj rows" 50
    (Minidb.Table.cardinality (Minidb.Database.find_exn db "specobj"));
  (* determinism *)
  let db2 = Workload.Gen_db.skyserver ~seed:"t" ~rows:100 in
  check_bool "same seed same data" true
    (Minidb.Table.rows (Minidb.Database.find_exn db "photoobj")
     = Minidb.Table.rows (Minidb.Database.find_exn db2 "photoobj"));
  let db3 = Workload.Gen_db.skyserver ~seed:"u" ~rows:100 in
  check_bool "different seed different data" true
    (Minidb.Table.rows (Minidb.Database.find_exn db "photoobj")
     <> Minidb.Table.rows (Minidb.Database.find_exn db3 "photoobj"));
  (* values live in the declared domains *)
  let info = Workload.Gen_db.skyserver_info in
  let ra = Workload.Gen_db.column info "ra" in
  List.iter
    (fun v ->
      match v with
      | Minidb.Value.Vint n ->
        check_bool "ra in domain" true (n >= ra.Workload.Gen_db.lo && n <= ra.Workload.Gen_db.hi)
      | _ -> Alcotest.fail "ra should be int")
    (Minidb.Table.column_values (Minidb.Database.find_exn db "photoobj") "ra");
  (* retail *)
  let rdb = Workload.Gen_db.retail ~seed:"t" ~rows:60 in
  check_bool "sales exists" true (Minidb.Database.find rdb "sales" <> None);
  check_bool "column lookup" true
    (try ignore (Workload.Gen_db.column Workload.Gen_db.retail_info "nope"); false
     with Not_found -> true)

let test_gen_query () =
  let p = { Workload.Gen_query.n = 50; templates = 5; seed = "q";
            caps = Workload.Gen_query.caps_full } in
  let log = Workload.Gen_query.skyserver_log p in
  check_int "log size" 50 (List.length log);
  (* deterministic *)
  check_bool "same seed same log" true
    (log = Workload.Gen_query.skyserver_log p);
  check_bool "different seed different log" true
    (log <> Workload.Gen_query.skyserver_log { p with seed = "q2" });
  (* all queries print/parse *)
  List.iter
    (fun q ->
      let s = Sqlir.Printer.to_string q in
      match Sqlir.Parser.parse_result s with
      | Ok q' -> check_bool "roundtrip" true (Sqlir.Ast.equal_query q q')
      | Error e -> Alcotest.failf "generated query invalid: %s (%s)" s e)
    log;
  (* labels align *)
  let labelled = Workload.Gen_query.skyserver_log_labelled p in
  check_bool "labelled log matches" true (List.map snd labelled = log);
  check_bool "labels in range" true
    (List.for_all (fun (l, _) -> l >= 0 && l < 5) labelled);
  check_bool "several distinct labels" true
    (List.length (List.sort_uniq compare (List.map fst labelled)) >= 3)

let test_caps () =
  let has_like log =
    List.exists
      (fun q ->
        match q.Sqlir.Ast.where with
        | Some p ->
          List.exists
            (function Sqlir.Ast.Like _ -> true | _ -> false)
            (Sqlir.Ast.predicate_atoms p)
        | None -> false)
      log
  in
  let has_sum log =
    List.exists
      (fun q ->
        List.exists
          (function
            | Sqlir.Ast.Sel_agg ((Sqlir.Ast.Sum | Sqlir.Ast.Avg), _, _) -> true
            | _ -> false)
          q.Sqlir.Ast.select)
      log
  in
  let result_caps = Workload.Gen_query.caps_for_measure Distance.Measure.Result in
  (* across many seeds, result-safe logs never contain LIKE or SUM *)
  for seed = 0 to 9 do
    let log =
      Workload.Gen_query.skyserver_log
        { Workload.Gen_query.n = 30; templates = 4;
          seed = string_of_int seed; caps = result_caps }
    in
    check_bool "no LIKE under result caps" false (has_like log);
    check_bool "no SUM under result caps" false (has_sum log)
  done

let test_executability () =
  (* every result-safe generated query runs on the generated database *)
  let db = Workload.Gen_db.skyserver ~seed:"exec" ~rows:80 in
  let log =
    Workload.Gen_query.skyserver_log
      { Workload.Gen_query.n = 40; templates = 4; seed = "exec";
        caps = Workload.Gen_query.caps_for_measure Distance.Measure.Result }
  in
  List.iter
    (fun q ->
      match Minidb.Executor.run db q with
      | _ -> ()
      | exception Minidb.Executor.Exec_error e ->
        Alcotest.failf "generated query does not execute: %s (%s)"
          (Sqlir.Printer.to_string q) (Minidb.Executor.error_to_string e))
    log;
  let rdb = Workload.Gen_db.retail ~seed:"exec" ~rows:80 in
  let rlog =
    Workload.Gen_query.retail_log
      { Workload.Gen_query.n = 40; templates = 4; seed = "exec";
        caps = Workload.Gen_query.caps_for_measure Distance.Measure.Result }
  in
  List.iter
    (fun q ->
      match Minidb.Executor.run rdb q with
      | _ -> ()
      | exception Minidb.Executor.Exec_error e ->
        Alcotest.failf "retail query does not execute: %s (%s)"
          (Sqlir.Printer.to_string q) (Minidb.Executor.error_to_string e))
    rlog

let test_cluster_structure () =
  (* queries from the same template should be closer (structure distance)
     than queries from different templates, on average *)
  let p = { Workload.Gen_query.n = 60; templates = 4; seed = "cluster";
            caps = Workload.Gen_query.caps_full } in
  let labelled = Workload.Gen_query.skyserver_log_labelled p in
  let intra = ref [] and inter = ref [] in
  List.iteri
    (fun i (li, qi) ->
      List.iteri
        (fun j (lj, qj) ->
          if i < j then begin
            let d = Distance.D_structure.distance qi qj in
            if li = lj then intra := d :: !intra else inter := d :: !inter
          end)
        labelled)
    labelled;
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  check_bool "intra-template closer than inter-template" true
    (mean !intra < mean !inter)

let test_log_io () =
  let log =
    Workload.Gen_query.skyserver_log
      { Workload.Gen_query.n = 15; templates = 3; seed = "io";
        caps = Workload.Gen_query.caps_full }
  in
  (match Workload.Log_io.of_string (Workload.Log_io.to_string log) with
   | Ok log2 -> check_bool "string roundtrip" true (log = log2)
   | Error e -> Alcotest.failf "log_io: %s" e);
  (* comments and blanks skipped; errors carry line numbers *)
  (match Workload.Log_io.of_string "# header\n\nSELECT a FROM r\n" with
   | Ok [ _ ] -> ()
   | _ -> Alcotest.fail "comment handling");
  (match Workload.Log_io.of_string "SELECT a FROM r\nnot sql\n" with
   | Error e -> check_bool "line number in error" true
       (String.length e >= 7 && String.sub e 0 7 = "line 2:")
   | Ok _ -> Alcotest.fail "expected parse failure");
  let path = Filename.temp_file "kitdpe" ".sql" in
  (match Workload.Log_io.save path log with
   | Ok () ->
     (match Workload.Log_io.load path with
      | Ok log2 -> check_bool "file roundtrip" true (log = log2)
      | Error e -> Alcotest.failf "load: %s" e)
   | Error e -> Alcotest.failf "save: %s" e);
  Sys.remove path

let () =
  Alcotest.run "workload"
    [ ("gen_db", [ Alcotest.test_case "databases" `Quick test_gen_db ]);
      ("gen_query",
       [ Alcotest.test_case "logs" `Quick test_gen_query;
         Alcotest.test_case "caps" `Quick test_caps;
         Alcotest.test_case "executability" `Quick test_executability;
         Alcotest.test_case "cluster structure" `Quick test_cluster_structure ]);
      ("log_io", [ Alcotest.test_case "log files" `Quick test_log_io ]) ]
