(* Shared QCheck generators for the test suites: random (syntactically
   valid) SQL queries and values. *)

module Ast = Sqlir.Ast
module Gen = QCheck.Gen

let ident_pool = [ "a"; "b"; "c"; "d"; "price"; "qty"; "name_"; "cat" ]
let rel_pool = [ "r"; "s"; "t_" ]

let ident = Gen.oneofl ident_pool
let rel_name = Gen.oneofl rel_pool

let small_string =
  Gen.oneofl [ "x"; "yz"; "foo"; "it's"; "A B"; ""; "100%"; "under_score" ]

(* floats that survive a %g print / re-parse round trip *)
let tame_float =
  Gen.map (fun n -> float_of_int n /. 8.0) (Gen.int_range (-8000) 8000)

let const : Ast.const Gen.t =
  Gen.frequency
    [ (4, Gen.map (fun n -> Ast.Cint n) (Gen.int_range (-1000) 1000));
      (2, Gen.map (fun f -> Ast.Cfloat f) tame_float);
      (3, Gen.map (fun s -> Ast.Cstring s) small_string) ]

let int_const = Gen.map (fun n -> Ast.Cint n) (Gen.int_range (-1000) 1000)

let attr : Ast.attr Gen.t =
  Gen.frequency
    [ (4, Gen.map (fun n -> Ast.attr n) ident);
      (1, Gen.map2 (fun r n -> Ast.attr ~rel:r n) rel_name ident) ]

let cmp = Gen.oneofl [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ]

let agg_fn = Gen.oneofl [ Ast.Count; Ast.Sum; Ast.Avg; Ast.Min; Ast.Max ]

let atom : Ast.pred Gen.t =
  Gen.frequency
    [ (4, Gen.map3 (fun c a v -> Ast.Cmp (c, a, v)) cmp attr const);
      (1, Gen.map3 (fun c a b -> Ast.Cmp_attrs (c, a, b)) cmp attr attr);
      (2,
       Gen.map3 (fun a lo hi -> Ast.Between (a, lo, hi)) attr int_const int_const);
      (2,
       Gen.map2
         (fun a vs -> Ast.In_list (a, vs))
         attr
         (Gen.list_size (Gen.int_range 1 4) const));
      (1, Gen.map2 (fun a s -> Ast.Like (a, s ^ "%")) attr small_string);
      (1, Gen.map (fun a -> Ast.Is_null a) attr);
      (1, Gen.map (fun a -> Ast.Is_not_null a) attr) ]

let pred : Ast.pred Gen.t =
  let open Gen in
  sized_size (int_range 0 2) @@ fix (fun self n ->
      if n = 0 then atom
      else
        frequency
          [ (3, atom);
            (2, map2 (fun l r -> Ast.And (l, r)) (self (n - 1)) (self (n - 1)));
            (2, map2 (fun l r -> Ast.Or (l, r)) (self (n - 1)) (self (n - 1)));
            (1, map (fun p -> Ast.Not p) (self (n - 1))) ])

let maybe_alias = Gen.(frequency [ (3, return None); (1, map Option.some ident) ])

let select_item : Ast.select_item Gen.t =
  Gen.frequency
    [ (5, Gen.map2 (fun a al -> Ast.Sel_attr (a, al)) attr maybe_alias);
      (1, Gen.map (fun al -> Ast.Sel_agg (Ast.Count, None, al)) maybe_alias);
      (2, Gen.map3 (fun f a al -> Ast.Sel_agg (f, Some a, al)) agg_fn attr maybe_alias) ]

let query : Ast.query Gen.t =
  let open Gen in
  let* distinct = bool in
  let* use_star = frequency [ (1, return true); (4, return false) ] in
  let* select =
    if use_star then return [ Ast.Star ]
    else list_size (int_range 1 3) select_item
  in
  let* from = list_size (int_range 1 2) rel_name >|= List.sort_uniq compare in
  let* with_join = frequency [ (1, return true); (3, return false) ] in
  let* joins =
    if with_join then
      let* a = attr and* b = attr in
      let* jkind = oneofl [ Ast.Inner; Ast.Left ] in
      return [ { Ast.jkind; jrel = "j_rel"; jleft = a; jright = b } ]
    else return []
  in
  let* where = option ~ratio:0.7 pred in
  let* group_by =
    frequency [ (3, return []); (1, list_size (int_range 1 2) attr) ]
  in
  let* having =
    if group_by = [] then return None
    else
      option ~ratio:0.4
        (let* c = cmp and* f = agg_fn and* v = int_const in
         let* arg = option attr in
         let arg = if f = Ast.Count then arg else Some (Ast.attr "a") in
         return (Ast.Cmp_agg (c, f, arg, v)))
  in
  let* order_by =
    frequency
      [ (3, return []);
        (1,
         list_size (int_range 1 2)
           (pair attr (oneofl [ Ast.Asc; Ast.Desc ]))) ]
  in
  let* limit = option ~ratio:0.3 (int_range 1 100) in
  return
    { Ast.distinct; select; from; joins; where; group_by; having; order_by; limit }

let arbitrary_query =
  QCheck.make ~print:(fun q -> Sqlir.Printer.to_string q) query

let arbitrary_pred =
  QCheck.make ~print:(fun p -> Sqlir.Printer.pred_to_string p) pred

(* values *)
let value : Minidb.Value.t Gen.t =
  Gen.frequency
    [ (4, Gen.map (fun n -> Minidb.Value.Vint n) (Gen.int_range (-1000) 1000));
      (2, Gen.map (fun f -> Minidb.Value.Vfloat f) tame_float);
      (3, Gen.map (fun s -> Minidb.Value.Vstring s) small_string);
      (1, Gen.return Minidb.Value.Vnull) ]

let arbitrary_value = QCheck.make ~print:Minidb.Value.to_string value
