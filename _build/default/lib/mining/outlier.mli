(** Distance-based outliers, Knorr & Ng [6]: an object is a DB(p, d)
    outlier if at least fraction [p] of all other objects lie farther than
    [d] from it. *)

type params = { p : float; d : float }

val run : params -> Dist_matrix.t -> bool array
(** [true] at outlier positions. *)

val outlier_indices : params -> Dist_matrix.t -> int list
