lib/mining/silhouette.mli: Dist_matrix
