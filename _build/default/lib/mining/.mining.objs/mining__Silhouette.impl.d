lib/mining/silhouette.ml: Array Dist_matrix Float Hashtbl List Option
