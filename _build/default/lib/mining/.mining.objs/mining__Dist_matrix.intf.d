lib/mining/dist_matrix.mli: Parallel
