lib/mining/dtw.ml: Array Float
