lib/mining/hier.ml: Array Dist_matrix Float List
