lib/mining/outlier.mli: Dist_matrix
