lib/mining/kmedoids.mli: Dist_matrix
