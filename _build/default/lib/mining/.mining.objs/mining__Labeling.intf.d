lib/mining/labeling.mli:
