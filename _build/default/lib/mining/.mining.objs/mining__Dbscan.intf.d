lib/mining/dbscan.mli: Dist_matrix
