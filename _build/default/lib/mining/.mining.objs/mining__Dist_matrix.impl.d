lib/mining/dist_matrix.ml: Array Float Parallel Printf
