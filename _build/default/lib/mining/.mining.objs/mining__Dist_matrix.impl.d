lib/mining/dist_matrix.ml: Array Float Printf
