lib/mining/apriori.ml: Hashtbl List Option Set String
