lib/mining/apriori.mli:
