lib/mining/dtw.mli:
