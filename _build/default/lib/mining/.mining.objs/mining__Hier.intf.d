lib/mining/hier.mli: Dist_matrix
