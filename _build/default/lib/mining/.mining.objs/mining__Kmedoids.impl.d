lib/mining/kmedoids.ml: Array Dist_matrix Float Fun List
