lib/mining/labeling.ml: Array Hashtbl List Option
