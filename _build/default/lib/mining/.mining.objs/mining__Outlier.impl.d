lib/mining/outlier.ml: Array Dist_matrix List
