lib/mining/dbscan.ml: Array Dist_matrix List Queue
