(** Agglomerative hierarchical clustering with the complete-link criterion
    (Defays [3]): the distance between clusters is the maximum pairwise
    distance, merged bottom-up. *)

type linkage = Complete | Single | Average

type merge = {
  left : int;    (** cluster id merged from (ids >= n are prior merges) *)
  right : int;
  height : float;  (** linkage distance at the merge *)
}

val dendrogram : ?linkage:linkage -> Dist_matrix.t -> merge list
(** The [n-1] merges in order.  New clusters get ids [n], [n+1], …
    Ties break deterministically on the smaller pair of ids. *)

val cut_k : ?linkage:linkage -> int -> Dist_matrix.t -> int array
(** Stop when [k] clusters remain; labels in [0, k) by first-member order. *)

val cut_height : ?linkage:linkage -> float -> Dist_matrix.t -> int array
(** Merge only below the given height. *)
