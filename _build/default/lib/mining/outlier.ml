type params = { p : float; d : float }

let run { p; d } m =
  let n = Dist_matrix.size m in
  Array.init n (fun i ->
      let far = ref 0 in
      for j = 0 to n - 1 do
        if j <> i && Dist_matrix.get m i j > d then incr far
      done;
      n > 1 && float_of_int !far >= p *. float_of_int (n - 1))

let outlier_indices params m =
  run params m
  |> Array.to_list
  |> List.mapi (fun i b -> (i, b))
  |> List.filter_map (fun (i, b) -> if b then Some i else None)
