type t = float array array

let of_fun n d =
  let m = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = d i j in
      m.(i).(j) <- v;
      m.(j).(i) <- v
    done
  done;
  m

let size (m : t) = Array.length m
let get (m : t) i j = m.(i).(j)

let validate m =
  let n = size m in
  let problem = ref None in
  let set p = if !problem = None then problem := Some p in
  Array.iteri
    (fun i row -> if Array.length row <> n then
        set (Printf.sprintf "row %d has length %d, expected %d" i (Array.length row) n))
    m;
  if !problem = None then begin
    for i = 0 to n - 1 do
      if m.(i).(i) <> 0.0 then set (Printf.sprintf "diagonal (%d,%d) is %g" i i m.(i).(i));
      for j = i + 1 to n - 1 do
        if m.(i).(j) <> m.(j).(i) then
          set (Printf.sprintf "asymmetry at (%d,%d)" i j);
        if m.(i).(j) < 0.0 then set (Printf.sprintf "negative distance at (%d,%d)" i j)
      done
    done
  end;
  match !problem with None -> Ok () | Some p -> Error p

let max_abs_diff a b =
  let n = size a in
  if size b <> n then invalid_arg "Dist_matrix.max_abs_diff: size mismatch";
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let d = Float.abs (a.(i).(j) -. b.(i).(j)) in
      if d > !worst then worst := d
    done
  done;
  !worst
