type t = float array array

let of_fun_seq n d = Parallel.Sym_matrix.build_seq n d
let of_fun ?pool n d = Parallel.Sym_matrix.build ?pool n d

let size (m : t) = Array.length m
let get (m : t) i j = m.(i).(j)

exception Bad of string

let validate m =
  let n = size m in
  let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  try
    Array.iteri
      (fun i row ->
        if Array.length row <> n then
          bad "row %d has length %d, expected %d" i (Array.length row) n)
      m;
    for i = 0 to n - 1 do
      if m.(i).(i) <> 0.0 then bad "diagonal (%d,%d) is %g" i i m.(i).(i);
      for j = i + 1 to n - 1 do
        if m.(i).(j) <> m.(j).(i) then bad "asymmetry at (%d,%d)" i j;
        if m.(i).(j) < 0.0 then bad "negative distance at (%d,%d)" i j
      done
    done;
    Ok ()
  with Bad p -> Error p

let max_abs_diff a b =
  let n = size a in
  if size b <> n then invalid_arg "Dist_matrix.max_abs_diff: size mismatch";
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let ra = a.(i) and rb = b.(i) in
    (* distance matrices are symmetric: the upper triangle (diagonal
       included) covers every distinct entry at half the cost *)
    for j = i to n - 1 do
      let d = Float.abs (ra.(j) -. rb.(j)) in
      if d > !worst then worst := d
    done
  done;
  !worst
