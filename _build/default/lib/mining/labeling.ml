let canonicalize labels =
  let mapping = Hashtbl.create 16 in
  let next = ref 0 in
  Array.map
    (fun l ->
      if l = -1 then -1
      else
        match Hashtbl.find_opt mapping l with
        | Some c -> c
        | None ->
          let c = !next in
          incr next;
          Hashtbl.add mapping l c;
          c)
    labels

let same_partition a b =
  Array.length a = Array.length b && canonicalize a = canonicalize b

(* contingency table over label pairs *)
let contingency a b =
  let tbl = Hashtbl.create 32 in
  Array.iteri
    (fun i la ->
      let key = (la, b.(i)) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    a;
  tbl

let choose2 n = float_of_int (n * (n - 1)) /. 2.0

let adjusted_rand_index a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Labeling.adjusted_rand_index";
  if n = 0 then 1.0
  else begin
    let tbl = contingency a b in
    let rows = Hashtbl.create 16 and cols = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (la, lb) c ->
        Hashtbl.replace rows la (c + Option.value ~default:0 (Hashtbl.find_opt rows la));
        Hashtbl.replace cols lb (c + Option.value ~default:0 (Hashtbl.find_opt cols lb)))
      tbl;
    let sum_cells = Hashtbl.fold (fun _ c acc -> acc +. choose2 c) tbl 0.0 in
    let sum_rows = Hashtbl.fold (fun _ c acc -> acc +. choose2 c) rows 0.0 in
    let sum_cols = Hashtbl.fold (fun _ c acc -> acc +. choose2 c) cols 0.0 in
    let total = choose2 n in
    let expected = sum_rows *. sum_cols /. total in
    let max_index = (sum_rows +. sum_cols) /. 2.0 in
    if max_index = expected then 1.0
    else (sum_cells -. expected) /. (max_index -. expected)
  end

let purity ~truth labels =
  let n = Array.length labels in
  if n = 0 then 1.0
  else begin
    (* group indices by cluster; noise points are singletons *)
    let groups = Hashtbl.create 16 in
    let singletons = ref [] in
    Array.iteri
      (fun i l ->
        if l = -1 then singletons := [ i ] :: !singletons
        else
          Hashtbl.replace groups l
            (i :: Option.value ~default:[] (Hashtbl.find_opt groups l)))
      labels;
    let clusters = Hashtbl.fold (fun _ g acc -> g :: acc) groups !singletons in
    let correct =
      List.fold_left
        (fun acc members ->
          let counts = Hashtbl.create 8 in
          List.iter
            (fun i ->
              Hashtbl.replace counts truth.(i)
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts truth.(i))))
            members;
          acc + Hashtbl.fold (fun _ c best -> max c best) counts 0)
        0 clusters
    in
    float_of_int correct /. float_of_int n
  end
