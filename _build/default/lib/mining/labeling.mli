(** Comparing clusterings: exact partition equality (what distance
    preservation guarantees) and the Adjusted Rand Index (for reporting
    agreement with planted ground truth). *)

val same_partition : int array -> int array -> bool
(** True iff the two labelings induce the same partition, i.e. they are
    equal up to a relabeling.  Noise labels ([-1]) must match exactly. *)

val canonicalize : int array -> int array
(** Relabel clusters by first appearance (noise stays [-1]); two labelings
    are the same partition iff their canonical forms are equal. *)

val adjusted_rand_index : int array -> int array -> float
(** ARI in [-1, 1]; 1 means identical partitions. *)

val purity : truth:int array -> int array -> float
(** Fraction of points whose cluster's majority ground-truth label matches
    their own; noise points count as singleton clusters. *)
