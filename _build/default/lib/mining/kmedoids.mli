(** K-medoids clustering in the style of Park & Jun's simple-and-fast
    algorithm [5]: deterministic initialization by centrality, then
    alternating assignment and medoid update until fixpoint. *)

type params = {
  k : int;
  max_iter : int;  (** safety bound; convergence usually takes a few steps *)
}

val run : params -> Dist_matrix.t -> int array
(** Labels per point in [0, k).  Deterministic: equal matrices give equal
    labels.  @raise Invalid_argument if [k] exceeds the point count or
    [k <= 0]. *)

val run_pam : params -> Dist_matrix.t -> int array
(** Classic PAM: after the Park–Jun alternation converges, greedily try
    every (medoid, non-medoid) swap and keep any that lowers total cost,
    until no swap improves.  Slower — O(k·(n-k)·n) per sweep — but escapes
    the local optima the fast alternation is prone to (measured in the
    ablation bench).  Deterministic. *)

val medoids : params -> Dist_matrix.t -> int array
(** The final medoid indices, sorted. *)

val cost : Dist_matrix.t -> int array -> int array -> float
(** Total distance of each point to its assigned medoid. *)
