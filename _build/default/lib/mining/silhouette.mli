(** Silhouette coefficient for evaluating a clustering against the distance
    matrix it was computed from — used by the ablation benchmarks to show
    that cluster {e quality}, not only cluster membership, is identical on
    plaintext and ciphertext. *)

val point_scores : Dist_matrix.t -> int array -> float array
(** Per-point silhouette values in [-1, 1].  Noise points ([-1]) and
    members of singleton clusters score 0 by convention. *)

val score : Dist_matrix.t -> int array -> float
(** Mean silhouette over all points; 0 for an empty input. *)
