(** Apriori frequent-itemset and association-rule mining (Agrawal-Srikant
    style), over string items.

    The paper's §V points out that result equivalence also enables
    association-rule mining over encrypted SQL logs [17]: transactions
    built from encrypted tokens/result tuples are item-wise injective
    images of the plaintext transactions, so supports and confidences are
    identical and the mined rules map 1:1.  The integration tests verify
    exactly that. *)

type itemset = string list
(** Sorted, duplicate-free. *)

type rule = {
  antecedent : itemset;
  consequent : itemset;
  support : float;     (** of antecedent ∪ consequent *)
  confidence : float;
}

type params = {
  min_support : float;     (** in (0, 1] *)
  min_confidence : float;  (** in (0, 1] *)
  max_size : int;          (** largest itemset size explored *)
}

val frequent_itemsets : params -> string list list -> (itemset * float) list
(** All itemsets with support >= [min_support], with their supports,
    ordered by (size, lexicographic) — deterministic.
    @raise Invalid_argument on empty input or bad parameters. *)

val rules : params -> string list list -> rule list
(** Association rules from the frequent itemsets, deterministic order. *)

val map_items : (string -> string) -> rule -> rule
(** Apply an item renaming to both sides of a rule (re-sorting under the
    new order) — what encryption does to a rule. *)

val equal_rule_sets : rule list -> rule list -> bool
(** Set equality of rules (item order within sets is irrelevant), with
    supports and confidences compared exactly. *)
