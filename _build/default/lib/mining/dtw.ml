let table ~cost a b =
  let n = Array.length a and m = Array.length b in
  let d = Array.make_matrix (n + 1) (m + 1) infinity in
  d.(0).(0) <- 0.0;
  for i = 1 to n do
    for j = 1 to m do
      let c = cost a.(i - 1) b.(j - 1) in
      d.(i).(j) <-
        c +. Float.min d.(i - 1).(j - 1) (Float.min d.(i - 1).(j) d.(i).(j - 1))
    done
  done;
  d

let distance ~cost a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 && m = 0 then 0.0
  else if n = 0 || m = 0 then infinity
  else (table ~cost a b).(n).(m)

let normalized ~cost a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 && m = 0 then 0.0
  else if n = 0 || m = 0 then infinity
  else distance ~cost a b /. float_of_int (n + m)

let path ~cost a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then []
  else begin
    let d = table ~cost a b in
    let rec walk i j acc =
      let acc = (i - 1, j - 1) :: acc in
      if i = 1 && j = 1 then acc
      else begin
        let diag = if i > 1 && j > 1 then d.(i - 1).(j - 1) else infinity in
        let up = if i > 1 then d.(i - 1).(j) else infinity in
        let left = if j > 1 then d.(i).(j - 1) else infinity in
        if diag <= up && diag <= left then walk (i - 1) (j - 1) acc
        else if up <= left then walk (i - 1) j acc
        else walk i (j - 1) acc
      end
    in
    walk n m []
  end
