(** Dynamic time warping over sequences, with a pluggable element cost —
    the standard way to compare query {e sessions} (ordered sequences of
    queries) rather than individual queries.

    Because the element cost is a query distance, DPE lifts directly:
    preserved per-query distances give identical DTW alignments and
    identical session distances, so session-level mining over encrypted
    logs matches plaintext exactly (integration-tested). *)

val distance :
  cost:('a -> 'b -> float) -> 'a array -> 'b array -> float
(** Classic DTW with steps (i-1,j), (i,j-1), (i-1,j-1); the distance of two
    empty sequences is 0, of an empty vs non-empty sequence is [infinity]. *)

val normalized :
  cost:('a -> 'b -> float) -> 'a array -> 'b array -> float
(** [distance / (len a + len b)] — comparable across session lengths.
    0 for two empty sequences. *)

val path :
  cost:('a -> 'b -> float) -> 'a array -> 'b array -> (int * int) list
(** The optimal alignment as (i, j) index pairs, start to end. *)
