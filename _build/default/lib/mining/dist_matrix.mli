(** Symmetric pairwise distance matrices — the only input the distance-based
    mining algorithms ([3] [4] [5] [6]) ever see, which is precisely why
    distance-preserving encryption preserves their output. *)

type t = float array array

val of_fun : int -> (int -> int -> float) -> t
(** [of_fun n d] evaluates [d i j] for [i < j] and mirrors it. *)

val size : t -> int
val get : t -> int -> int -> float

val validate : t -> (unit, string) result
(** Checks squareness, zero diagonal, symmetry and non-negativity. *)

val max_abs_diff : t -> t -> float
(** Largest entrywise deviation between two matrices of the same size. *)
