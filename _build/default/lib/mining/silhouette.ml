let point_scores m labels =
  let n = Dist_matrix.size m in
  if Array.length labels <> n then invalid_arg "Silhouette: size mismatch";
  let mean_dist i members =
    let others = List.filter (fun j -> j <> i) members in
    match others with
    | [] -> None
    | _ ->
      Some
        (List.fold_left (fun acc j -> acc +. Dist_matrix.get m i j) 0.0 others
         /. float_of_int (List.length others))
  in
  let clusters = Hashtbl.create 16 in
  Array.iteri
    (fun i l ->
      if l <> -1 then
        Hashtbl.replace clusters l
          (i :: Option.value ~default:[] (Hashtbl.find_opt clusters l)))
    labels;
  Array.mapi
    (fun i l ->
      if l = -1 then 0.0
      else begin
        let own = Hashtbl.find clusters l in
        match mean_dist i own with
        | None -> 0.0 (* singleton *)
        | Some a ->
          let b =
            Hashtbl.fold
              (fun l' members acc ->
                if l' = l then acc
                else
                  match mean_dist i members with
                  | None -> acc
                  | Some d -> Float.min acc d)
              clusters infinity
          in
          if b = infinity then 0.0
          else if Float.max a b = 0.0 then 0.0
          else (b -. a) /. Float.max a b
      end)
    labels

let score m labels =
  let s = point_scores m labels in
  if Array.length s = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 s /. float_of_int (Array.length s)
