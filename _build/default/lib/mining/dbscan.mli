(** DBSCAN density-based clustering (Ester et al. [4]) over a distance
    matrix. *)

type params = { eps : float; min_pts : int }

val run : params -> Dist_matrix.t -> int array
(** Labels per point: cluster ids from 0 upward, [-1] for noise.  Cluster
    ids are assigned in scan order, so equal distance matrices give equal
    label arrays (not merely equal partitions). *)
