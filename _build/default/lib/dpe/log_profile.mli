(** Static analysis of a query log.

    KIT-DPE step 3 needs to know, for every attribute, {e how} the log uses
    it — equality tests, range predicates, ordering under LIMIT, grouping,
    aggregation, projection — because the appropriate encryption class
    (Definition 6) is the most secure class that still supports all of
    those operations.  This module computes that usage profile, the join
    classes (connected components of attribute-to-attribute equality), and
    a list of warnings about constructs that constrain scheme selection. *)

type usage = {
  eq : bool;               (** [=], [<>], [IN] against constants *)
  range : bool;            (** [<], [<=], [>], [>=], [BETWEEN] *)
  like : bool;
  null_check : bool;
  group : bool;
  order : bool;
  order_with_limit : bool; (** ORDER BY this attribute in a LIMIT query *)
  select_plain : bool;     (** projected outside any aggregate *)
  agg_minmax : bool;
  agg_sum : bool;          (** argument of SUM or AVG *)
  agg_count : bool;
  int_consts : bool;       (** integer constants compared against it *)
  float_consts : bool;
  string_consts : bool;
}

val no_usage : usage

type t = {
  attrs : (string * usage) list;  (** keyed by unqualified attribute name *)
  join_classes : string list list;
      (** connected components of equi-join / attribute-equality edges *)
  relations : string list;
  n_queries : int;
  warnings : string list;
}

val of_log : Sqlir.Ast.query list -> t

val usage_of : t -> string -> usage
(** [no_usage] for attributes absent from the log. *)

val join_class_of : t -> string -> string list option
(** The join class containing the attribute, if it joins with others. *)

val pp : Format.formatter -> t -> unit
