module Value = Minidb.Value
module Schema = Minidb.Schema
module Table = Minidb.Table
module Database = Minidb.Database

let column_cipher_type enc name (ty : Value.ty) : Value.ty =
  let cls =
    match (Encryptor.scheme enc).Scheme.consts with
    | Scheme.Global cls -> cls
    | Scheme.Per_attribute _ -> Scheme.class_for_attr (Encryptor.scheme enc) name
  in
  match cls with
  | Scheme.C_ope | Scheme.C_ope_join _ -> Value.Tint
  | Scheme.C_det | Scheme.C_det_join _ | Scheme.C_prob | Scheme.C_hom ->
    ignore ty;
    Value.Tstring

let encrypt_schema enc (s : Schema.t) =
  Schema.make
    ~rel:(Encryptor.encrypt_rel enc s.Schema.rel)
    (List.map
       (fun (c : Schema.column) ->
         (Encryptor.encrypt_attr_name enc c.Schema.name,
          column_cipher_type enc c.Schema.name c.Schema.ty))
       s.Schema.columns)

let encrypt_table enc table =
  let plain_schema = Table.schema table in
  let names = Schema.column_names plain_schema in
  let cipher_schema = encrypt_schema enc plain_schema in
  let encrypt_row row =
    Array.of_list
      (List.mapi
         (fun i name -> Encryptor.encrypt_value enc ~attr:name row.(i))
         names)
  in
  Table.map_rows encrypt_row cipher_schema table

let encrypt_database enc db =
  List.fold_left
    (fun acc table -> Database.add_table acc (encrypt_table enc table))
    Database.empty (Database.tables db)

let decrypt_table enc ~plain_schema table =
  let names = Schema.column_names plain_schema in
  let exception Stop of string in
  let decrypt_row row =
    Array.of_list
      (List.mapi
         (fun i name ->
           match Encryptor.decrypt_value enc ~attr:name row.(i) with
           | Ok v -> v
           | Error e -> raise (Stop e))
         names)
  in
  match Table.map_rows decrypt_row plain_schema table with
  | t -> Ok t
  | exception Stop e -> Error e
