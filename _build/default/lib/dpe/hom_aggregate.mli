(** Homomorphic aggregation over HOM (Paillier) columns — the CryptDB-style
    path for SUM/AVG that the result-equivalence scheme falls back to.

    The provider computes the encrypted sum without any key material; only
    the key owner can read it.  AVG is served as (SUM, COUNT). *)

val sum_ciphertext :
  Encryptor.t -> Minidb.Database.t -> rel:string -> attr:string
  -> Bignum.Bignat.t * int
(** [sum_ciphertext enc encdb ~rel ~attr] folds the Paillier ciphertexts of
    the (plaintext-named) column [rel.attr] of the {e encrypted} database
    with homomorphic addition.  Returns the ciphertext of the sum and the
    count of non-null values.  Uses only the public key.
    @raise Not_found if the relation/column does not exist.
    @raise Encryptor.Encrypt_error if the column is not a HOM column. *)

val decrypt_sum : Encryptor.t -> Bignum.Bignat.t -> int
(** Key-owner decryption of a homomorphic sum. *)
