module Value = Minidb.Value

let sum_ciphertext enc encdb ~rel ~attr =
  (match
     (match (Encryptor.scheme enc).Scheme.consts with
      | Scheme.Global cls -> cls
      | Scheme.Per_attribute _ -> Scheme.class_for_attr (Encryptor.scheme enc) attr)
   with
   | Scheme.C_hom -> ()
   | cls ->
     raise
       (Encryptor.Encrypt_error
          (Printf.sprintf "column %s.%s is %s, not HOM" rel attr
             (Scheme.show_const_class cls))));
  let pub, _ = Encryptor.paillier enc in
  let enc_rel = Encryptor.encrypt_rel enc rel in
  let enc_attr = Encryptor.encrypt_attr_name enc attr in
  let table = Minidb.Database.find_exn encdb enc_rel in
  let values = Minidb.Table.column_values table enc_attr in
  let rng = Crypto.Drbg.create ~seed:"hom-sum-neutral" in
  let zero = Crypto.Paillier.encrypt_int pub rng 0 in
  List.fold_left
    (fun (acc, n) v ->
      match v with
      | Value.Vnull -> (acc, n)
      | Value.Vstring s ->
        (match Crypto.Hex.decode s with
         | None -> raise (Encryptor.Encrypt_error "HOM cell is not hex")
         | Some ct ->
           (Crypto.Paillier.add pub acc (Crypto.Paillier.deserialize ct), n + 1))
      | v ->
        raise
          (Encryptor.Encrypt_error
             ("HOM cell is not a ciphertext: " ^ Value.to_string v)))
    (zero, 0) values

let decrypt_sum enc c =
  let _, sk = Encryptor.paillier enc in
  Crypto.Paillier.decrypt_int sk c
