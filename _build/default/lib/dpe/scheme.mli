(** A concrete DPE scheme for one distance measure: the output of KIT-DPE
    steps 1-3 and the input to the {!Encryptor}.

    A scheme fixes the encryption class of the three slots of the
    high-level scheme (EncRel, EncAttr, {EncA.Const : Attribute A}).
    Constants are governed either by one {e global} class (token
    equivalence needs a single token-level map so that the same token is
    the same ciphertext regardless of which attribute it belongs to) or by
    a {e per-attribute} policy in the CryptDB style. *)

type const_class =
  | C_prob
  | C_det
  | C_ope
  | C_det_join of string  (** DET with the key of this join class *)
  | C_ope_join of string  (** OPE with the key of this join class *)
  | C_hom                 (** Paillier column for SUM/AVG (DB side only) *)
[@@deriving show, eq]

type attr_policy = {
  cls : const_class;
  reason : string;  (** why Definition 6 picked this class *)
}

type const_policy =
  | Global of const_class
  | Per_attribute of (string * attr_policy) list * const_class
      (** assignments keyed by unqualified attribute name, plus the default
          class for attributes not seen in the profiled log *)

type t = {
  measure : Distance.Measure.t;
  equivalence : Equivalence.t;
  enc_rel : Taxonomy.ppe_class;
  enc_attr : Taxonomy.ppe_class;
  consts : const_policy;
  notes : string list;
  warnings : string list;
}

val class_for_attr : t -> string -> const_class
(** The constant class for an (unqualified) attribute name. *)

val ppe_of_const_class : const_class -> Taxonomy.ppe_class

val const_summary : t -> string
(** Table I's "EncA.Const" cell: "DET", "PROB", "via CryptDB", or
    "via CryptDB, except HOM". *)

val security_floor : t -> int
(** The weakest {!Taxonomy.security_level} used anywhere in the scheme —
    the scheme's overall exposure. *)

val pp : Format.formatter -> t -> unit
