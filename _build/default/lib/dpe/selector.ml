module M = Distance.Measure

(* The class ladder for one attribute under execution-faithful (CryptDB
   style) requirements.  We walk Fig. 1 top-down and stop at the first
   class that supports everything the log does with the attribute —
   that is exactly Definition 6. *)
let cryptdb_policy ~(for_access_area : bool) (profile : Log_profile.t) name
  : Scheme.attr_policy =
  let u = Log_profile.usage_of profile name in
  let joins = Log_profile.join_class_of profile name in
  let join_group = Option.map Crypto.Join_enc.canonical_group joins in
  let needs_order =
    if for_access_area then
      (* only WHERE predicates shape an access area: ORDER BY, LIMIT and
         MIN/MAX never touch constants of this attribute *)
      u.Log_profile.range
    else
      u.Log_profile.range || u.Log_profile.order_with_limit
      || u.Log_profile.agg_minmax
  in
  let needs_equality =
    if for_access_area then u.Log_profile.eq || u.Log_profile.like
    else
      u.Log_profile.eq || u.Log_profile.group || u.Log_profile.like
      || u.Log_profile.select_plain
  in
  let in_join_class = join_group <> None in
  if needs_order then
    match join_group with
    | Some g ->
      { Scheme.cls = Scheme.C_ope_join g;
        reason = "order comparisons across a join class" }
    | None ->
      { Scheme.cls = Scheme.C_ope;
        reason =
          (if u.Log_profile.range then "range predicates"
           else if u.Log_profile.order_with_limit then "ORDER BY under LIMIT"
           else "MIN/MAX aggregation") }
  else if needs_equality || (in_join_class && not for_access_area) then
    match join_group with
    | Some g ->
      { Scheme.cls = Scheme.C_det_join g; reason = "equi-joins across columns" }
    | None ->
      { Scheme.cls = Scheme.C_det;
        reason =
          (if u.Log_profile.eq then "equality predicates"
           else if u.Log_profile.group then "grouping"
           else if u.Log_profile.like then "LIKE pattern (equality of regions)"
           else "appears in result tuples") }
  else if u.Log_profile.agg_sum then
    if for_access_area then
      { Scheme.cls = Scheme.C_prob;
        reason = "SELECT aggregates do not influence the access area (§IV-C)" }
    else
      { Scheme.cls = Scheme.C_hom; reason = "SUM/AVG aggregation over the column" }
  else
    { Scheme.cls = Scheme.C_prob; reason = "no comparisons needed" }

let per_attribute_policies ~for_access_area profile =
  List.map
    (fun (name, _) -> (name, cryptdb_policy ~for_access_area profile name))
    profile.Log_profile.attrs

let select measure (profile : Log_profile.t) : Scheme.t =
  let equivalence = Equivalence.of_measure measure in
  let base_warnings = profile.Log_profile.warnings in
  match measure with
  | M.Token | M.Edit ->
    { measure; equivalence;
      enc_rel = Taxonomy.DET;
      enc_attr = Taxonomy.DET;
      consts = Scheme.Global Scheme.C_det;
      notes =
        ([ "one deterministic token map shared by relations, attributes and \
            constants: the same plain token must become the same cipher token \
            in every context, or token overlaps between queries would change" ]
         @
         if measure = M.Edit then
           [ "token-level edit distance rides on the same token map: \
              encryption rewrites the token sequence element-wise and \
              injectively, so every edit script carries over unchanged" ]
         else []);
      warnings = base_warnings }
  | M.Structure | M.Clause ->
    { measure; equivalence;
      enc_rel = Taxonomy.DET;
      enc_attr = Taxonomy.DET;
      consts = Scheme.Global Scheme.C_prob;
      notes =
        [ "features drop constants entirely, so constants take the most \
           secure class of the taxonomy (PROB)" ];
      warnings = base_warnings }
  | M.Result ->
    let warnings =
      base_warnings
      @ List.filter_map
          (fun (name, u) ->
            if u.Log_profile.like then
              Some
                (Printf.sprintf
                   "LIKE on %s is not executable over DET ciphertexts; such \
                    queries break result equivalence" name)
            else if u.Log_profile.agg_sum then
              Some
                (Printf.sprintf
                   "SUM/AVG over %s is evaluated homomorphically and needs a \
                    client re-encryption round-trip (CryptDB style)" name)
            else None)
          profile.Log_profile.attrs
    in
    { measure; equivalence;
      enc_rel = Taxonomy.DET;
      enc_attr = Taxonomy.DET;
      consts =
        Scheme.Per_attribute
          (per_attribute_policies ~for_access_area:false profile, Scheme.C_det);
      notes =
        [ "database content of every accessed attribute must be shared and \
           encrypted with the same per-attribute schemes" ];
      warnings }
  | M.Access ->
    { measure; equivalence;
      enc_rel = Taxonomy.DET;
      enc_attr = Taxonomy.DET;
      consts =
        Scheme.Per_attribute
          (per_attribute_policies ~for_access_area:true profile, Scheme.C_det);
      notes =
        [ "attribute domains must be shared so the provider can interpret \
           access areas";
          "attributes appearing only inside SELECT aggregates are encrypted \
           with PROB — more secure than CryptDB's HOM onion (§IV-C)" ];
      warnings = base_warnings }

let select_all profile = List.map (fun m -> select m profile) M.all

let yes = "yes" and no = "no"

let table1_row (s : Scheme.t) =
  let m = s.Scheme.measure in
  [ (match m with
     | M.Token -> "Token-Based Query-String Distance"
     | M.Structure -> "Query-Structure Distance"
     | M.Result -> "Query-Result Distance"
     | M.Access -> "Query-Access-Area Distance"
     | M.Edit -> "Token-Level Edit Distance (extension)"
     | M.Clause -> "Clause-Based OLAP Distance (extension)");
    yes;
    (if M.needs_db_content m then yes else no);
    (if M.needs_domains m then yes else no);
    Equivalence.to_string s.Scheme.equivalence;
    Equivalence.characteristic_name s.Scheme.equivalence;
    Taxonomy.to_string s.Scheme.enc_rel;
    Taxonomy.to_string s.Scheme.enc_attr;
    Scheme.const_summary s ]

let expected_table1 () =
  [ [ "Token-Based Query-String Distance"; yes; no; no;
      "Token Equivalence"; "tokens"; "DET"; "DET"; "DET" ];
    [ "Query-Structure Distance"; yes; no; no;
      "Structural Equivalence"; "features"; "DET"; "DET"; "PROB" ];
    [ "Query-Result Distance"; yes; yes; no;
      "Result Equivalence"; "result tuples"; "DET"; "DET"; "via CryptDB" ];
    [ "Query-Access-Area Distance"; yes; no; yes;
      "Access-Area Equivalence"; "access_A"; "DET"; "DET";
      "via CryptDB, except HOM" ] ]
