(** KIT-DPE step 3: pick the {e appropriate} encryption class for every
    slot of the high-level scheme (Definition 6) — the most secure class of
    the Fig. 1 taxonomy that still ensures the equivalence notion of the
    requested distance measure, given how the profiled log actually uses
    each attribute.

    The derivations reproduce Table I:
    - token distance: DET / DET / DET (one global token map);
    - structure distance: DET / DET / PROB (features drop constants);
    - result distance: DET / DET / per-operation classes as CryptDB would
      assign them (equality → DET or JOIN, order → OPE, SUM/AVG → HOM);
    - access-area distance: like result, except attributes that occur only
      inside SELECT aggregates need no comparable ciphertexts at all and
      get PROB — strictly more secure than CryptDB's HOM onion (§IV-C). *)

val select : Distance.Measure.t -> Log_profile.t -> Scheme.t

val select_all : Log_profile.t -> Scheme.t list
(** One scheme per measure, in {!Distance.Measure.all} order. *)

val table1_row : Scheme.t -> string list
(** The Table I row for a scheme: measure name, shared information flags,
    equivalence notion, characteristic, EncRel, EncAttr, EncConst. *)

val expected_table1 : unit -> string list list
(** The rows exactly as printed in the paper — the reference the harness
    diffs {!table1_row} output against. *)
