module M = Distance.Measure
module Ast = Sqlir.Ast

type report = {
  measure : M.t;
  pairs : int;
  max_deviation : float;
  mean_plain_distance : float;
  ok : bool;
}

let pp_report fmt r =
  Format.fprintf fmt
    "%-12s pairs=%-5d mean d=%.4f  max |d(Enc)-d|=%g  %s"
    (M.to_string r.measure) r.pairs r.mean_plain_distance r.max_deviation
    (if r.ok then "PRESERVED" else "VIOLATED")

let distance_matrix ctx measure log = M.matrix ctx measure log

let check_dpe ?plain_db ?cipher_db ?(x = Distance.D_access.default_x)
    enc measure log =
  let enc_log = Encryptor.encrypt_log enc log in
  let plain_ctx = { M.db = plain_db; x } in
  let cipher_ctx = { M.db = cipher_db; x } in
  let dp = distance_matrix plain_ctx measure log in
  let dc = distance_matrix cipher_ctx measure enc_log in
  let n = Array.length dp in
  let max_dev = ref 0.0 and sum = ref 0.0 and pairs = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      incr pairs;
      sum := !sum +. dp.(i).(j);
      let dev = Float.abs (dp.(i).(j) -. dc.(i).(j)) in
      if dev > !max_dev then max_dev := dev
    done
  done;
  { measure;
    pairs = !pairs;
    max_deviation = !max_dev;
    mean_plain_distance = (if !pairs = 0 then 0.0 else !sum /. float_of_int !pairs);
    ok = !max_dev = 0.0 }

(* token-level encryption: what Enc does to one (fused) token of the query
   text.  Fused LIMIT tokens are structural and stay put. *)
let encrypt_token enc lexeme =
  match Sqlir.Lexer.tokenize lexeme with
  | [ (Sqlir.Lexer.Kw _ | Sqlir.Lexer.Sym _) ] -> lexeme
  | [ Sqlir.Lexer.Ident s ] ->
    (* under the token scheme's global map this equals encrypt_rel *)
    Encryptor.encrypt_attr_name enc s
  | [ (Sqlir.Lexer.Int_lit _ | Sqlir.Lexer.Float_lit _ | Sqlir.Lexer.Str_lit _ as tok) ] ->
    let c =
      match tok with
      | Sqlir.Lexer.Int_lit n -> Ast.Cint n
      | Sqlir.Lexer.Float_lit f -> Ast.Cfloat f
      | Sqlir.Lexer.Str_lit s -> Ast.Cstring s
      | _ -> assert false
    in
    (* constants carry no attribute context at the token level: only valid
       for Global policies, which is exactly the token scheme *)
    Sqlir.Printer.const_to_string
      (Encryptor.encrypt_const enc
         (Ast.In_predicate { Ast.rel = None; name = "" }) c)
  | _ -> lexeme (* fused structural token, e.g. "LIMIT 20" *)

let check_token_equivalence enc q =
  let plain_tokens =
    Distance.D_token.fuse (Sqlir.Lexer.tokenize (Sqlir.Printer.to_string q))
  in
  let mapped =
    List.map (encrypt_token enc) plain_tokens |> List.sort_uniq String.compare
  in
  let cipher_tokens =
    Distance.D_token.tokens (Sqlir.Printer.to_string (Encryptor.encrypt_query enc q))
  in
  mapped = cipher_tokens

let encrypt_attr_string enc s =
  match String.index_opt s '.' with
  | None -> Encryptor.encrypt_attr_name enc s
  | Some i ->
    Encryptor.encrypt_rel enc (String.sub s 0 i)
    ^ "."
    ^ Encryptor.encrypt_attr_name enc
        (String.sub s (i + 1) (String.length s - i - 1))

let encrypt_feature enc (f : Distance.Feature.t) : Distance.Feature.t =
  let ea = encrypt_attr_string enc in
  match f with
  | Distance.Feature.Fselect a -> Distance.Feature.Fselect (ea a)
  | Distance.Feature.Fselect_agg (fn, a) ->
    Distance.Feature.Fselect_agg (fn, Option.map ea a)
  | Distance.Feature.Fdistinct -> Distance.Feature.Fdistinct
  | Distance.Feature.Ffrom r -> Distance.Feature.Ffrom (Encryptor.encrypt_rel enc r)
  | Distance.Feature.Fjoin (k, r, a, b) ->
    Distance.Feature.Fjoin (k, Encryptor.encrypt_rel enc r, ea a, ea b)
  | Distance.Feature.Fwhere (a, op) ->
    (* attribute-against-attribute shapes embed the second attribute *)
    let op' =
      match String.index_opt op ' ' with
      | Some i when String.length op > i + 1 ->
        String.sub op 0 i ^ " " ^ ea (String.sub op (i + 1) (String.length op - i - 1))
      | _ -> op
    in
    Distance.Feature.Fwhere (ea a, op')
  | Distance.Feature.Fgroup_by a -> Distance.Feature.Fgroup_by (ea a)
  | Distance.Feature.Fhaving (fn, a, op) ->
    Distance.Feature.Fhaving (fn, Option.map ea a, op)
  | Distance.Feature.Forder_by (a, d) -> Distance.Feature.Forder_by (ea a, d)
  | Distance.Feature.Flimit -> Distance.Feature.Flimit

let check_structure_equivalence enc q =
  let mapped =
    List.map (encrypt_feature enc) (Distance.Feature.of_query q)
    |> List.sort_uniq Distance.Feature.compare
  in
  let cipher = Distance.Feature.of_query (Encryptor.encrypt_query enc q) in
  mapped = cipher

let check_result_equivalence ~plain_db ~cipher_db enc q =
  let plain_res = Minidb.Executor.run plain_db q in
  let cipher_res = Minidb.Executor.run cipher_db (Encryptor.encrypt_query enc q) in
  let mapped =
    List.map
      (Encryptor.encrypt_result_tuple enc plain_res.Minidb.Executor.provenance)
      plain_res.Minidb.Executor.tuples
    |> List.sort_uniq (List.compare Minidb.Value.compare)
  in
  mapped = Minidb.Executor.result_tuple_set cipher_res

let check_access_equivalence enc q =
  (* Definition 2 for access_A on a single query: the encrypted query's
     area map must be keyed by exactly the encrypted attribute names, and
     each area must be the image of the plaintext area — same coarse shape
     (Empty/All/region) and same self-relations.  Relations BETWEEN areas
     are only ever taken per attribute across two queries; that full
     pairwise preservation is checked by [check_dpe Access].  (Areas of
     different attributes are never compared by the distance: they live
     under independent keys.) *)
  let plain = Distance.Access_area.of_query q in
  let cipher = Distance.Access_area.of_query (Encryptor.encrypt_query enc q) in
  let mapped_keys =
    List.map (fun (k, _) -> encrypt_attr_string enc k) plain
    |> List.sort_uniq String.compare
  in
  let cipher_keys = List.map fst cipher |> List.sort_uniq String.compare in
  let shape (a : Distance.Access_area.t) =
    match a with
    | Distance.Access_area.Empty -> `Empty
    | Distance.Access_area.All -> `All
    | Distance.Access_area.Num _ -> `Region
    | Distance.Access_area.Sfinite _ | Distance.Access_area.Scofinite _
    | Distance.Access_area.Opaque _ -> `Points
  in
  mapped_keys = cipher_keys
  && List.for_all
       (fun (k, a) ->
         let e = List.assoc (encrypt_attr_string enc k) cipher in
         let sp = shape a and se = shape e in
         (* a DET-encrypted numeric point set legitimately becomes a string
            point set; everything else keeps its shape *)
         (sp = se || (sp = `Region && se = `Points))
         && Distance.Access_area.equal e e
         && Distance.Access_area.overlaps a a = Distance.Access_area.overlaps e e)
       plain

let check_equivalence ?plain_db ?cipher_db enc notion q =
  match notion with
  | Equivalence.Token_equivalence -> check_token_equivalence enc q
  | Equivalence.Structural_equivalence -> check_structure_equivalence enc q
  | Equivalence.Result_equivalence ->
    (match plain_db, cipher_db with
     | Some p, Some c -> check_result_equivalence ~plain_db:p ~cipher_db:c enc q
     | _ -> invalid_arg "Verdict.check_equivalence: result needs both databases")
  | Equivalence.Access_area_equivalence -> check_access_equivalence enc q
