(** Encryption of database content (needed for result equivalence: both the
    log and the content of every accessed attribute are shared, Table I).

    Relation and column names go through the scheme's name encryption;
    every stored value goes through the per-attribute constant policy, so
    that the encrypted query executed over the encrypted database touches
    exactly the rows the plaintext query touches over the plaintext
    database. *)

val encrypt_schema : Encryptor.t -> Minidb.Schema.t -> Minidb.Schema.t

val encrypt_table :
  ?pool:Parallel.Pool.t -> Encryptor.t -> Minidb.Table.t -> Minidb.Table.t
(** Rows are encrypted in chunks across [pool] (default
    [Parallel.Pool.global ()]).  Row [i] draws its randomness from a DRBG
    derived from the master key and [(rel, i)] alone
    ({!Encryptor.row_rng}), so for a fixed master key the ciphertext table
    is identical for {e every} pool size, including the sequential
    fallback.  DET and OPE columns are additionally memoized (repeated
    plaintexts cost one lookup; both classes are deterministic, so the
    memo is invisible in the output). *)

val encrypt_database :
  ?pool:Parallel.Pool.t -> Encryptor.t -> Minidb.Database.t -> Minidb.Database.t
(** @raise Encryptor.Encrypt_error when a value cannot be represented in
    its column's class (e.g. a string in an OPE column). *)

val decrypt_table : Encryptor.t -> plain_schema:Minidb.Schema.t
  -> Minidb.Table.t -> (Minidb.Table.t, string) result
(** Key-owner inversion, given the plaintext schema (for column names). *)
