type ppe_class =
  | PROB
  | HOM
  | DET
  | JOIN
  | OPE
  | JOIN_OPE
[@@deriving show, eq, ord]

let all = [ PROB; HOM; DET; JOIN; OPE; JOIN_OPE ]

let to_string = function
  | PROB -> "PROB"
  | HOM -> "HOM"
  | DET -> "DET"
  | JOIN -> "JOIN"
  | OPE -> "OPE"
  | JOIN_OPE -> "JOIN-OPE"

let of_string = function
  | "PROB" -> Some PROB
  | "HOM" -> Some HOM
  | "DET" -> Some DET
  | "JOIN" -> Some JOIN
  | "OPE" -> Some OPE
  | "JOIN-OPE" -> Some JOIN_OPE
  | _ -> None

let security_level = function
  | PROB | HOM -> 5
  | DET -> 4
  | JOIN -> 3
  | OPE -> 2
  | JOIN_OPE -> 1

let strictly_more_secure a b = security_level a > security_level b
let at_least_as_secure a b = security_level a >= security_level b

let subclass_edges =
  [ (HOM, PROB); (OPE, DET); (JOIN, DET); (JOIN_OPE, OPE); (JOIN_OPE, JOIN) ]

let leakage = function
  | PROB -> "nothing (semantically secure)"
  | HOM -> "nothing per value; supports additive aggregation"
  | DET -> "equality of values within one column"
  | JOIN -> "equality of values across the columns of a join class"
  | OPE -> "order (and equality) of values within one column"
  | JOIN_OPE -> "order of values across the columns of a join class"
