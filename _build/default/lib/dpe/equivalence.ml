type t =
  | Token_equivalence
  | Structural_equivalence
  | Result_equivalence
  | Access_area_equivalence
[@@deriving show, eq]

let of_measure = function
  | Distance.Measure.Token | Distance.Measure.Edit -> Token_equivalence
  | Distance.Measure.Structure | Distance.Measure.Clause ->
    Structural_equivalence
  | Distance.Measure.Result -> Result_equivalence
  | Distance.Measure.Access -> Access_area_equivalence

let measure_of = function
  | Token_equivalence -> Distance.Measure.Token
  | Structural_equivalence -> Distance.Measure.Structure
  | Result_equivalence -> Distance.Measure.Result
  | Access_area_equivalence -> Distance.Measure.Access

let to_string = function
  | Token_equivalence -> "Token Equivalence"
  | Structural_equivalence -> "Structural Equivalence"
  | Result_equivalence -> "Result Equivalence"
  | Access_area_equivalence -> "Access-Area Equivalence"

let characteristic_name = function
  | Token_equivalence -> "tokens"
  | Structural_equivalence -> "features"
  | Result_equivalence -> "result tuples"
  | Access_area_equivalence -> "access_A"
