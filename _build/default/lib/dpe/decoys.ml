module Ast = Sqlir.Ast

type plan = {
  log : Sqlir.Ast.query list;
  real_count : int;
}

(* redraw every constant of the query uniformly from its attribute's
   declared domain; the query SHAPE is kept, so decoys are indistinguishable
   from real traffic at the structural level *)
let redraw_constants rng info q =
  let fresh_const ctx (c : Ast.const) =
    let attr_of =
      match ctx with
      | Ast.In_predicate a -> Some a
      | Ast.In_aggregate ((Ast.Min | Ast.Max | Ast.Sum | Ast.Avg), Some a) -> Some a
      | Ast.In_aggregate _ -> None
    in
    match attr_of with
    | None -> c
    | Some a ->
      (match Workload.Gen_db.column info a.Ast.name with
       | col ->
         (match c with
          | Ast.Cint _ ->
            Ast.Cint
              (col.Workload.Gen_db.lo
               + Crypto.Drbg.uniform_int rng
                   (col.Workload.Gen_db.hi - col.Workload.Gen_db.lo + 1))
          | Ast.Cstring _ when col.Workload.Gen_db.vocab <> [] ->
            Ast.Cstring
              (List.nth col.Workload.Gen_db.vocab
                 (Crypto.Drbg.uniform_int rng
                    (List.length col.Workload.Gen_db.vocab)))
          | Ast.Cstring s ->
            (* LIKE patterns and free strings: keep the shape, scramble *)
            Ast.Cstring s
          | Ast.Cfloat f -> Ast.Cfloat f)
       | exception Not_found -> c)
  in
  let q' = Ast.map_query ~rel:Fun.id ~attr:Fun.id ~const:fresh_const q in
  (* BETWEEN bounds may have been redrawn out of order *)
  Sqlir.Normalizer.normalize_cipher_safe q'

let inject ~seed ~ratio info log =
  if ratio < 0.0 then invalid_arg "Decoys.inject: negative ratio";
  let n = List.length log in
  let count = int_of_float (ceil (ratio *. float_of_int n)) in
  let rng = Crypto.Drbg.create ~seed:("decoys/" ^ seed) in
  let arr = Array.of_list log in
  let decoys =
    List.init count (fun _ ->
        let template = arr.(Crypto.Drbg.uniform_int rng n) in
        redraw_constants rng info template)
  in
  { log = log @ decoys; real_count = n }

let strip plan v =
  if Array.length v <> List.length plan.log then
    invalid_arg "Decoys.strip: vector does not match padded log";
  Array.sub v 0 plan.real_count

let strip_matrix plan m =
  if Array.length m <> List.length plan.log then
    invalid_arg "Decoys.strip_matrix: matrix does not match padded log";
  Array.init plan.real_count (fun i -> Array.sub m.(i) 0 plan.real_count)
