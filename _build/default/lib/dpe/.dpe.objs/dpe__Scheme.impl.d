lib/dpe/scheme.pp.ml: Distance Equivalence Format List Ppx_deriving_runtime Taxonomy
