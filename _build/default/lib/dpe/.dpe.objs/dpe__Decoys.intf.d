lib/dpe/decoys.pp.mli: Sqlir Workload
