lib/dpe/db_encryptor.pp.mli: Encryptor Minidb Parallel
