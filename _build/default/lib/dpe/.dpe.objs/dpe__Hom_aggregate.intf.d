lib/dpe/hom_aggregate.pp.mli: Bignum Encryptor Minidb
