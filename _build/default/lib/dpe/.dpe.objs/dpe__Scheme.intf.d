lib/dpe/scheme.pp.mli: Distance Equivalence Format Ppx_deriving_runtime Taxonomy
