lib/dpe/verdict.pp.mli: Distance Encryptor Equivalence Format Minidb Sqlir
