lib/dpe/selector.pp.mli: Distance Log_profile Scheme
