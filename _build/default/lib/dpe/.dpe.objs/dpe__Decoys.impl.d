lib/dpe/decoys.pp.ml: Array Crypto Fun List Sqlir Workload
