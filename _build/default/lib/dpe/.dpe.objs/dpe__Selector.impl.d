lib/dpe/selector.pp.ml: Crypto Distance Equivalence List Log_profile Option Printf Scheme Taxonomy
