lib/dpe/db_encryptor.pp.ml: Array Encryptor List Minidb Parallel Scheme
