lib/dpe/equivalence.pp.mli: Distance Ppx_deriving_runtime
