lib/dpe/verdict.pp.ml: Array Distance Encryptor Equivalence Float Format List Minidb Option Sqlir String
