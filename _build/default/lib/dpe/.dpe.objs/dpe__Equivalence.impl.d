lib/dpe/equivalence.pp.ml: Distance Ppx_deriving_runtime
