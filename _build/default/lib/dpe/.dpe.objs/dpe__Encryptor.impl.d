lib/dpe/encryptor.pp.ml: Buffer Crypto Hashtbl List Minidb Option Printf Scheme Sqlir String
