lib/dpe/taxonomy.pp.mli: Ppx_deriving_runtime
