lib/dpe/log_profile.pp.ml: Format Hashtbl List Option Printf Sqlir String
