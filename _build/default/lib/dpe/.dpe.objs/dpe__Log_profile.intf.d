lib/dpe/log_profile.pp.mli: Format Sqlir
