lib/dpe/encryptor.pp.mli: Crypto Minidb Scheme Sqlir
