lib/dpe/taxonomy.pp.ml: Ppx_deriving_runtime
