lib/dpe/hom_aggregate.pp.ml: Crypto Encryptor List Minidb Printf Scheme
