(** Empirical verification of the paper's formal claims.

    [check_dpe] validates Definition 1 on a concrete log: the pairwise
    distance matrix of the encrypted log must equal the plaintext one
    exactly.  [check_equivalence] validates Definition 2 per query:
    [Enc (c q) = c (Enc q)] for the measure's characteristic [c]. *)

type report = {
  measure : Distance.Measure.t;
  pairs : int;
  max_deviation : float;
  mean_plain_distance : float;
  ok : bool;  (** [max_deviation = 0.0] *)
}

val pp_report : Format.formatter -> report -> unit

val check_dpe :
  ?plain_db:Minidb.Database.t ->
  ?cipher_db:Minidb.Database.t ->
  ?x:float ->
  Encryptor.t ->
  Distance.Measure.t ->
  Sqlir.Ast.query list ->
  report
(** Encrypts the log with the encryptor and compares all pairwise
    distances.  [plain_db]/[cipher_db] are required for {!Distance.Measure.Result}. *)

val check_equivalence :
  ?plain_db:Minidb.Database.t ->
  ?cipher_db:Minidb.Database.t ->
  Encryptor.t ->
  Equivalence.t ->
  Sqlir.Ast.query ->
  bool
(** Definition 2 on a single query. *)

val distance_matrix :
  Distance.Measure.ctx -> Distance.Measure.t -> Sqlir.Ast.query list
  -> float array array
(** Symmetric pairwise distance matrix — also the input format of the
    {!Mining} algorithms. *)
