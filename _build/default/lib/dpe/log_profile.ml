module Ast = Sqlir.Ast

type usage = {
  eq : bool;
  range : bool;
  like : bool;
  null_check : bool;
  group : bool;
  order : bool;
  order_with_limit : bool;
  select_plain : bool;
  agg_minmax : bool;
  agg_sum : bool;
  agg_count : bool;
  int_consts : bool;
  float_consts : bool;
  string_consts : bool;
}

let no_usage = {
  eq = false; range = false; like = false; null_check = false; group = false;
  order = false; order_with_limit = false; select_plain = false;
  agg_minmax = false; agg_sum = false; agg_count = false;
  int_consts = false; float_consts = false; string_consts = false;
}

type t = {
  attrs : (string * usage) list;
  join_classes : string list list;
  relations : string list;
  n_queries : int;
  warnings : string list;
}

(* profile construction uses a mutable table keyed by unqualified name *)
let key (a : Ast.attr) = a.Ast.name

let of_log (log : Ast.query list) =
  let tbl : (string, usage) Hashtbl.t = Hashtbl.create 32 in
  let touch a f =
    let k = key a in
    let u = Option.value ~default:no_usage (Hashtbl.find_opt tbl k) in
    Hashtbl.replace tbl k (f u)
  in
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun s ->
      if not (List.mem s !warnings) then warnings := s :: !warnings) fmt
  in
  let const_types a c u =
    ignore a;
    match c with
    | Ast.Cint _ -> { u with int_consts = true }
    | Ast.Cfloat _ -> { u with float_consts = true }
    | Ast.Cstring _ -> { u with string_consts = true }
  in
  (* union-find over attribute keys for join classes *)
  let parent : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None | Some "" -> x
    | Some p when p = x -> x
    | Some p ->
      let r = find p in
      Hashtbl.replace parent x r;
      r
  in
  let union x y =
    if not (Hashtbl.mem parent x) then Hashtbl.replace parent x x;
    if not (Hashtbl.mem parent y) then Hashtbl.replace parent y y;
    let rx = find x and ry = find y in
    if rx <> ry then Hashtbl.replace parent rx ry
  in
  let rec walk_pred ~in_where q p =
    match p with
    | Ast.Cmp (c, a, v) ->
      let is_range = match c with
        | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> true
        | Ast.Eq | Ast.Neq -> false
      in
      touch a (fun u ->
          let u = const_types a v u in
          if is_range then { u with range = true } else { u with eq = true })
    | Ast.Cmp_attrs (c, a, b) ->
      touch a (fun u -> u);
      touch b (fun u -> u);
      (match c with
       | Ast.Eq -> union (key a) (key b)
       | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
         warn "non-equality attribute comparison %s: order across columns needs JOIN-OPE"
           (Sqlir.Printer.pred_to_string p);
         touch a (fun u -> { u with range = true });
         touch b (fun u -> { u with range = true });
         union (key a) (key b))
    | Ast.Between (a, lo, hi) ->
      touch a (fun u ->
          let u = const_types a lo (const_types a hi u) in
          { u with range = true })
    | Ast.In_list (a, vs) ->
      touch a (fun u ->
          let u = List.fold_left (fun u v -> const_types a v u) u vs in
          { u with eq = true })
    | Ast.Like (a, _) -> touch a (fun u -> { u with like = true; string_consts = true })
    | Ast.Is_null a | Ast.Is_not_null a -> touch a (fun u -> { u with null_check = true })
    | Ast.Cmp_agg (_, fn, arg, v) ->
      (match arg with
       | None -> ()
       | Some a ->
         touch a (fun u ->
             match fn with
             | Ast.Count -> { u with agg_count = true }
             | Ast.Sum | Ast.Avg ->
               let u = const_types a v u in
               { u with agg_sum = true }
             | Ast.Min | Ast.Max ->
               let u = const_types a v u in
               { u with agg_minmax = true }))
    | Ast.And (l, r) | Ast.Or (l, r) ->
      walk_pred ~in_where q l;
      walk_pred ~in_where q r
    | Ast.Not p -> walk_pred ~in_where q p
  in
  let walk_query q =
    List.iter
      (function
        | Ast.Star -> ()
        | Ast.Sel_attr (a, _) -> touch a (fun u -> { u with select_plain = true })
        | Ast.Sel_agg (fn, arg, _) ->
          (match arg with
           | None -> ()
           | Some a ->
             touch a (fun u ->
                 match fn with
                 | Ast.Count -> { u with agg_count = true }
                 | Ast.Sum | Ast.Avg -> { u with agg_sum = true }
                 | Ast.Min | Ast.Max -> { u with agg_minmax = true })))
      q.Ast.select;
    List.iter
      (fun (j : Ast.join) ->
        (* join equality is tracked through join classes, not the eq flag:
           it involves no constants of either attribute *)
        touch j.Ast.jleft (fun u -> u);
        touch j.Ast.jright (fun u -> u);
        union (key j.Ast.jleft) (key j.Ast.jright))
      q.Ast.joins;
    Option.iter (walk_pred ~in_where:true q) q.Ast.where;
    Option.iter (walk_pred ~in_where:false q) q.Ast.having;
    List.iter (fun a -> touch a (fun u -> { u with group = true })) q.Ast.group_by;
    List.iter
      (fun (a, _) ->
        touch a (fun u ->
            if q.Ast.limit <> None then { u with order = true; order_with_limit = true }
            else { u with order = true }))
      q.Ast.order_by
  in
  List.iter walk_query log;
  let attrs =
    Hashtbl.fold (fun k u acc -> (k, u) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (* post-hoc warnings *)
  List.iter
    (fun (k, u) ->
      if u.like then warn "attribute %s is used with LIKE" k;
      if u.range && u.float_consts then
        warn "attribute %s has float range constants (integer OPE cannot encrypt them)" k;
      if u.range && u.string_consts then
        warn "attribute %s has string range constants (OPE is numeric)" k)
    attrs;
  let roots = Hashtbl.create 16 in
  Hashtbl.iter
    (fun x _ ->
      let r = find x in
      Hashtbl.replace roots r (x :: Option.value ~default:[] (Hashtbl.find_opt roots r)))
    parent;
  let join_classes =
    Hashtbl.fold (fun _ members acc ->
        match List.sort_uniq String.compare members with
        | [] | [ _ ] -> acc
        | cls -> cls :: acc)
      roots []
    |> List.sort compare
  in
  let relations =
    List.concat_map Ast.relations log |> List.sort_uniq String.compare
  in
  { attrs; join_classes; relations;
    n_queries = List.length log; warnings = List.rev !warnings }

let usage_of t k =
  Option.value ~default:no_usage (List.assoc_opt k t.attrs)

let join_class_of t k =
  List.find_opt (fun cls -> List.mem k cls) t.join_classes

let pp fmt t =
  Format.fprintf fmt "log profile: %d queries, %d relations, %d attributes@."
    t.n_queries (List.length t.relations) (List.length t.attrs);
  List.iter
    (fun (k, u) ->
      let flags =
        [ ("eq", u.eq); ("range", u.range); ("like", u.like);
          ("null", u.null_check); ("group", u.group); ("order", u.order);
          ("order+limit", u.order_with_limit); ("select", u.select_plain);
          ("min/max", u.agg_minmax); ("sum/avg", u.agg_sum);
          ("count", u.agg_count) ]
        |> List.filter snd |> List.map fst
      in
      Format.fprintf fmt "  %-16s %s@." k (String.concat " " flags))
    t.attrs;
  List.iter
    (fun cls -> Format.fprintf fmt "  join class: {%s}@." (String.concat ", " cls))
    t.join_classes;
  List.iter (fun w -> Format.fprintf fmt "  warning: %s@." w) t.warnings
