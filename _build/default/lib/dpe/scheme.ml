type const_class =
  | C_prob
  | C_det
  | C_ope
  | C_det_join of string
  | C_ope_join of string
  | C_hom
[@@deriving show, eq]

type attr_policy = {
  cls : const_class;
  reason : string;
}

type const_policy =
  | Global of const_class
  | Per_attribute of (string * attr_policy) list * const_class

type t = {
  measure : Distance.Measure.t;
  equivalence : Equivalence.t;
  enc_rel : Taxonomy.ppe_class;
  enc_attr : Taxonomy.ppe_class;
  consts : const_policy;
  notes : string list;
  warnings : string list;
}

let class_for_attr t name =
  match t.consts with
  | Global c -> c
  | Per_attribute (assignments, default) ->
    (match List.assoc_opt name assignments with
     | Some { cls; _ } -> cls
     | None -> default)

let ppe_of_const_class = function
  | C_prob -> Taxonomy.PROB
  | C_det -> Taxonomy.DET
  | C_ope -> Taxonomy.OPE
  | C_det_join _ -> Taxonomy.JOIN
  | C_ope_join _ -> Taxonomy.JOIN_OPE
  | C_hom -> Taxonomy.HOM

let const_class_to_string = function
  | C_prob -> "PROB"
  | C_det -> "DET"
  | C_ope -> "OPE"
  | C_det_join g -> "JOIN(" ^ g ^ ")"
  | C_ope_join g -> "JOIN-OPE(" ^ g ^ ")"
  | C_hom -> "HOM"

let const_summary t =
  match t.consts with
  | Global c -> const_class_to_string c
  | Per_attribute (assignments, _) ->
    let classes = List.map (fun (_, p) -> p.cls) assignments in
    let has c = List.exists (equal_const_class c) classes in
    if has C_hom then "via CryptDB"
    else if List.exists (function C_prob -> true | _ -> false) classes
    then "via CryptDB, except HOM"
    else "via CryptDB"

let security_floor t =
  let levels =
    Taxonomy.security_level t.enc_rel
    :: Taxonomy.security_level t.enc_attr
    ::
    (match t.consts with
     | Global c -> [ Taxonomy.security_level (ppe_of_const_class c) ]
     | Per_attribute (assignments, default) ->
       Taxonomy.security_level (ppe_of_const_class default)
       :: List.map
            (fun (_, p) -> Taxonomy.security_level (ppe_of_const_class p.cls))
            assignments)
  in
  List.fold_left min 5 levels

let pp fmt t =
  Format.fprintf fmt "DPE scheme for %s distance (%s)@."
    (Distance.Measure.to_string t.measure)
    (Equivalence.to_string t.equivalence);
  Format.fprintf fmt "  EncRel  = %s@." (Taxonomy.to_string t.enc_rel);
  Format.fprintf fmt "  EncAttr = %s@." (Taxonomy.to_string t.enc_attr);
  (match t.consts with
   | Global c -> Format.fprintf fmt "  EncConst = %s (global)@." (const_class_to_string c)
   | Per_attribute (assignments, default) ->
     Format.fprintf fmt "  EncConst (default %s):@." (const_class_to_string default);
     List.iter
       (fun (a, p) ->
         Format.fprintf fmt "    %-16s %-14s %s@." a (const_class_to_string p.cls) p.reason)
       assignments);
  List.iter (fun n -> Format.fprintf fmt "  note: %s@." n) t.notes;
  List.iter (fun w -> Format.fprintf fmt "  warning: %s@." w) t.warnings
