(** Decoy-query injection — a countermeasure extension (not in the paper).

    The frequency/sorting attacks on DET/OPE constants feed on the skew of
    the constant distribution in the outsourced log.  The owner can blunt
    them by appending {e decoy queries} whose constants are drawn uniformly
    from the attribute domains.  Pairwise distances between {e real}
    queries are untouched (distances are per pair, decoys only add rows and
    columns to the matrix), so the owner simply drops the decoy rows from
    whatever the provider returns.  The price is bandwidth and provider
    compute, plus distance computations involving decoys that are thrown
    away; the gain is a flatter constant distribution as seen by the
    adversary.

    The A4 ablation in [bench/main.exe -- decoys] measures the trade. *)

type plan = {
  log : Sqlir.Ast.query list;  (** real queries followed by decoys *)
  real_count : int;            (** prefix length of real queries *)
}

val inject :
  seed:string ->
  ratio:float ->
  Workload.Gen_db.info ->
  Sqlir.Ast.query list ->
  plan
(** [inject ~seed ~ratio info log] appends [ceil (ratio * |log|)] decoys
    built by re-instantiating the log's own queries with fresh uniform
    constants from the domain metadata [info].  Deterministic in [seed].
    @raise Invalid_argument if [ratio < 0]. *)

val strip : plan -> 'a array -> 'a array
(** Drop the decoy entries from a per-query result vector (labels,
    outlier flags) the provider computed over the padded log. *)

val strip_matrix : plan -> float array array -> float array array
(** Drop decoy rows/columns from a padded distance matrix. *)
