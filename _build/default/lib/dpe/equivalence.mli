(** Equivalence notions (Definition 2): for a distance measure, the
    characteristic [c] of a single query that encryption must commute with
    ([Enc (c x) = c (Enc x)]). *)

type t =
  | Token_equivalence        (** c = tokens *)
  | Structural_equivalence   (** c = features *)
  | Result_equivalence       (** c = result tuples (needs the database) *)
  | Access_area_equivalence  (** c = access_A for every attribute A *)
[@@deriving show, eq]

val of_measure : Distance.Measure.t -> t
val measure_of : t -> Distance.Measure.t
val to_string : t -> string
val characteristic_name : t -> string
(** The name the paper gives [c]: "tokens", "features", "result tuples"
    or "access_A". *)
