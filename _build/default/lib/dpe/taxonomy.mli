(** The taxonomy of property-preserving encryption classes (Fig. 1).

    Rows are security levels (higher is better); arrows are subclass or
    usage-mode relations.  The interpretation follows the paper and
    CryptDB [8]: PROB and HOM reveal nothing per value; DET additionally
    reveals within-column equality; JOIN reveals equality across the
    columns of a join class; OPE additionally reveals order; JOIN-OPE
    reveals order across columns. *)

type ppe_class =
  | PROB
  | HOM
  | DET
  | JOIN
  | OPE
  | JOIN_OPE
[@@deriving show, eq, ord]

val all : ppe_class list

val to_string : ppe_class -> string
val of_string : string -> ppe_class option

val security_level : ppe_class -> int
(** Fig. 1 row, from 1 (JOIN-OPE, least secure) to 5 (PROB and HOM).
    Classes on the same row are not comparable. *)

val strictly_more_secure : ppe_class -> ppe_class -> bool
(** [strictly_more_secure a b] iff [a]'s row is strictly above [b]'s. *)

val at_least_as_secure : ppe_class -> ppe_class -> bool

val subclass_edges : (ppe_class * ppe_class) list
(** Fig. 1 arrows [(sub, super)]: HOM ⊂ PROB, OPE ⊂ DET, and the JOIN
    usage modes of DET and OPE. *)

val leakage : ppe_class -> string
(** One-line description of what a ciphertext of this class reveals. *)
