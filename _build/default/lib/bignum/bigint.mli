(** Arbitrary-precision signed integers, layered over {!Bignat}.

    Rounds out the bignum substrate into a generally usable library
    (extended Euclid with signed Bézout coefficients, truncated division)
    — {!Bignat.mod_inv} tracks signs ad hoc internally; this module gives
    the clean signed story and is tested against it. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val to_int_opt : t -> int option
val of_bignat : Bignat.t -> t
val to_bignat_opt : t -> Bignat.t option
(** [None] for negative values. *)

val of_string : string -> t
(** Accepts an optional leading [-]. @raise Invalid_argument otherwise. *)

val to_string : t -> string

val sign : t -> int
(** -1, 0 or 1. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Truncated division (like OCaml's [/] and [mod]): the remainder carries
    the dividend's sign. @raise Division_by_zero. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val egcd : t -> t -> t * t * t
(** [egcd a b = (g, x, y)] with [g = gcd(|a|,|b|) = a*x + b*y], [g >= 0]. *)

val mod_inv : t -> t -> t option
(** [mod_inv a m] in [[0, m)]; [None] if not coprime. [m > 0] required. *)

val pp : Format.formatter -> t -> unit
