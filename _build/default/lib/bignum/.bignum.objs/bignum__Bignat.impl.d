lib/bignum/bignat.ml: Array Buffer Bytes Char Format List Printf Stdlib String
