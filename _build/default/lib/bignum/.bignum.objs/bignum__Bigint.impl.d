lib/bignum/bigint.ml: Bignat Format Stdlib String
