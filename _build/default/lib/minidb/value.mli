(** Runtime values stored in {!Table}s and produced by the {!Executor}.

    A crucial property for the whole reproduction: an {e encrypted} database
    is just another [Minidb] database whose values happen to be ciphertexts
    (OPE integers, DET strings).  The executor therefore runs unchanged on
    plain and encrypted data — exactly the deployment model of the paper. *)

type t =
  | Vint of int
  | Vfloat of float
  | Vstring of string
  | Vnull
[@@deriving show, eq, ord]

type ty = Tint | Tfloat | Tstring [@@deriving show, eq, ord]

val type_of : t -> ty option
(** [None] for [Vnull]. *)

val of_const : Sqlir.Ast.const -> t
val to_const : t -> Sqlir.Ast.const option
(** [None] for [Vnull]. *)

val is_null : t -> bool

val compare_sql : t -> t -> int option
(** Three-valued SQL comparison: [None] when either side is null or the
    types are incomparable (int/float compare numerically). *)

val to_string : t -> string

val like_match : pattern:string -> string -> bool
(** SQL LIKE semantics: [%] matches any run, [_] any single character. *)
