(** Relation schemas. *)

type column = { name : string; ty : Value.ty } [@@deriving show, eq]

type t = { rel : string; columns : column list } [@@deriving show, eq]

val make : rel:string -> (string * Value.ty) list -> t
(** @raise Invalid_argument on duplicate column names. *)

val arity : t -> int
val index_of : t -> string -> int option
val column_names : t -> string list
val column_type : t -> string -> Value.ty option
