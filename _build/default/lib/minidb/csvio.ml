(* strings are always quoted: an unquoted NULL cell is SQL null, and
   quoting everything else keeps the distinction unambiguous *)
let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let cell_of_value = function
  | Value.Vnull -> "NULL"
  | Value.Vint n -> string_of_int n
  | Value.Vfloat f -> Printf.sprintf "%h" f (* lossless hex float *)
  | Value.Vstring s -> quote s

let ty_to_string = function
  | Value.Tint -> "int"
  | Value.Tfloat -> "float"
  | Value.Tstring -> "string"

let ty_of_string = function
  | "int" -> Some Value.Tint
  | "float" -> Some Value.Tfloat
  | "string" -> Some Value.Tstring
  | _ -> None

let table_to_string table =
  let schema = Table.schema table in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (String.concat ","
       (List.map
          (fun (c : Schema.column) ->
            quote (c.Schema.name ^ ":" ^ ty_to_string c.Schema.ty))
          schema.Schema.columns));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (Array.to_list (Array.map cell_of_value row)));
      Buffer.add_char buf '\n')
    (Table.rows table);
  Buffer.contents buf

(* a small CSV reader: returns rows of (cell, was_quoted) *)
let parse_csv (input : string) : ((string * bool) list list, string) result =
  let n = String.length input in
  let rows = ref [] and fields = ref [] in
  let buf = Buffer.create 32 in
  let quoted = ref false in
  let had_quote = ref false in
  let error = ref None in
  let flush_field () =
    fields := (Buffer.contents buf, !had_quote) :: !fields;
    Buffer.clear buf;
    had_quote := false
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let i = ref 0 in
  while !i < n && !error = None do
    let c = input.[!i] in
    if !quoted then begin
      if c = '"' then
        if !i + 1 < n && input.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          incr i
        end
        else quoted := false
      else Buffer.add_char buf c
    end
    else begin
      match c with
      | '"' ->
        if Buffer.length buf > 0 then error := Some "quote inside unquoted field"
        else begin
          quoted := true;
          had_quote := true
        end
      | ',' -> flush_field ()
      | '\n' -> flush_row ()
      | '\r' -> () (* tolerate CRLF *)
      | c -> Buffer.add_char buf c
    end;
    incr i
  done;
  match !error with
  | Some e -> Error e
  | None ->
    if !quoted then Error "unterminated quoted field"
    else begin
      if Buffer.length buf > 0 || !fields <> [] then flush_row ();
      Ok (List.rev !rows)
    end

let value_of_cell (ty : Value.ty) (cell, was_quoted) =
  if (not was_quoted) && cell = "NULL" then Ok Value.Vnull
  else
    match ty with
    | Value.Tstring -> Ok (Value.Vstring cell)
    | Value.Tint ->
      (match int_of_string_opt cell with
       | Some n -> Ok (Value.Vint n)
       | None -> Error (Printf.sprintf "not an int: %S" cell))
    | Value.Tfloat ->
      (match float_of_string_opt cell with
       | Some f -> Ok (Value.Vfloat f)
       | None -> Error (Printf.sprintf "not a float: %S" cell))

let table_of_string ~rel input =
  match parse_csv input with
  | Error e -> Error ("csv: " ^ e)
  | Ok [] -> Error "csv: missing header"
  | Ok (header :: body) ->
    let parse_col (cell, _) =
      match String.rindex_opt cell ':' with
      | None -> Error (Printf.sprintf "header cell %S lacks a type" cell)
      | Some i ->
        let name = String.sub cell 0 i in
        let ty_str = String.sub cell (i + 1) (String.length cell - i - 1) in
        (match ty_of_string ty_str with
         | Some ty -> Ok (name, ty)
         | None -> Error (Printf.sprintf "unknown type %S" ty_str))
    in
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest ->
        (match parse_col c with
         | Ok col -> collect (col :: acc) rest
         | Error e -> Error e)
    in
    (match collect [] header with
     | Error e -> Error e
     | Ok cols ->
       (match Schema.make ~rel cols with
        | schema ->
          let types = List.map snd cols in
          let parse_row cells =
            if List.length cells <> List.length types then
              Error
                (Printf.sprintf "row arity %d, expected %d" (List.length cells)
                   (List.length types))
            else begin
              let rec go acc ts cs =
                match ts, cs with
                | [], [] -> Ok (Array.of_list (List.rev acc))
                | t :: ts, c :: cs ->
                  (match value_of_cell t c with
                   | Ok v -> go (v :: acc) ts cs
                   | Error e -> Error e)
                | _ -> assert false
              in
              go [] types cells
            end
          in
          let rec rows acc = function
            | [] -> Ok (List.rev acc)
            | r :: rest ->
              (match parse_row r with
               | Ok row -> rows (row :: acc) rest
               | Error e -> Error e)
          in
          (match rows [] body with
           | Ok rs -> Ok (Table.of_rows schema rs)
           | Error e -> Error e)
        | exception Invalid_argument e -> Error e))

let write_file path content =
  match open_out path with
  | oc ->
    output_string oc content;
    close_out oc;
    Ok ()
  | exception Sys_error e -> Error e

let read_file path =
  match open_in_bin path with
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s
  | exception Sys_error e -> Error e

let write_table path table = write_file path (table_to_string table)

let read_table ~rel path =
  match read_file path with
  | Error e -> Error e
  | Ok content -> table_of_string ~rel content

let write_database ~dir db =
  (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755 with
   | Sys_error _ -> ());
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | table :: rest ->
      let rel = (Table.schema table).Schema.rel in
      let file = rel ^ ".csv" in
      (match write_table (Filename.concat dir file) table with
       | Ok () -> go (file :: acc) rest
       | Error e -> Error e)
  in
  go [] (Database.tables db)

let read_database ~dir =
  match Sys.readdir dir with
  | files ->
    let csvs =
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f ".csv")
      |> List.sort String.compare
    in
    let rec go db = function
      | [] -> Ok db
      | f :: rest ->
        let rel = Filename.chop_suffix f ".csv" in
        (match read_table ~rel (Filename.concat dir f) with
         | Ok table ->
           (match Database.add_table db table with
            | db -> go db rest
            | exception Invalid_argument e -> Error e)
         | Error e -> Error (f ^ ": " ^ e))
    in
    go Database.empty csvs
  | exception Sys_error e -> Error e
