type column = { name : string; ty : Value.ty } [@@deriving show, eq]

type t = { rel : string; columns : column list } [@@deriving show, eq]

let make ~rel cols =
  let names = List.map fst cols in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Schema.make: duplicate column names";
  { rel; columns = List.map (fun (name, ty) -> { name; ty }) cols }

let arity t = List.length t.columns

let index_of t name =
  let rec go i = function
    | [] -> None
    | c :: _ when c.name = name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.columns

let column_names t = List.map (fun c -> c.name) t.columns

let column_type t name =
  List.find_opt (fun c -> c.name = name) t.columns |> Option.map (fun c -> c.ty)
