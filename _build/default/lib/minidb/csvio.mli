(** CSV serialization of tables and databases — the wire format for
    shipping (encrypted) database content to the service provider.

    Dialect: RFC-4180-style quoting; the header row carries typed column
    declarations ([name:int], [name:float], [name:string]); a bare
    unquoted [NULL] cell is SQL null, while the quoted string ["NULL"]
    stays a string.  Round-trips exactly (tested by property). *)

val table_to_string : Table.t -> string

val table_of_string : rel:string -> string -> (Table.t, string) result
(** Parse one table. The relation name is external to the format. *)

val write_table : string -> Table.t -> (unit, string) result
(** [write_table path table] writes one CSV file. *)

val read_table : rel:string -> string -> (Table.t, string) result

val write_database : dir:string -> Database.t -> (string list, string) result
(** One [<relation>.csv] per table inside [dir] (created if missing);
    returns the file names written. *)

val read_database : dir:string -> (Database.t, string) result
(** Load every [*.csv] in [dir]; the file stem is the relation name. *)
