(** Hash indexes over single columns.

    An index is a pure accelerator: the executor uses it as a prefilter
    for top-level equality predicates and then re-applies the full WHERE
    clause, so query semantics never depend on which indexes exist.
    Encrypted databases index exactly as well as plaintext ones — DET
    ciphertexts are ordinary hashable strings — which keeps the provider's
    query cost symmetric with the owner's. *)

type t

val build : Table.t -> string -> t
(** [build table col] indexes the named column.
    @raise Not_found if the column does not exist. *)

val column : t -> string
val cardinality : t -> int
(** Number of distinct non-null keys. *)

val lookup : t -> Value.t -> Value.t array list
(** Rows whose column equals the probe (SQL equality: ints and floats
    compare numerically); never returns rows for a null probe. *)
