type t = { schema : Schema.t; rows : Value.t array list }

let check_arity schema row =
  if Array.length row <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Table: row arity %d does not match schema %s (%d)"
         (Array.length row) schema.Schema.rel (Schema.arity schema))

let create schema = { schema; rows = [] }

let of_rows schema rows =
  List.iter (check_arity schema) rows;
  { schema; rows }

let schema t = t.schema
let rows t = t.rows

let insert t row =
  check_arity t.schema row;
  { t with rows = t.rows @ [ row ] }

let cardinality t = List.length t.rows

let column_values t name =
  match Schema.index_of t.schema name with
  | None -> raise Not_found
  | Some i -> List.map (fun row -> row.(i)) t.rows

let map_rows f schema' t =
  let rows = List.map f t.rows in
  List.iter (check_arity schema') rows;
  { schema = schema'; rows }
