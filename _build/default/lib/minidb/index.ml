(* ints and floats must share a key, as in the executor's hash join *)
let key = function
  | Value.Vint n -> Value.Vfloat (float_of_int n)
  | v -> v

type t = {
  column : string;
  table : (Value.t, Value.t array list) Hashtbl.t;
}

let build table col =
  match Schema.index_of (Table.schema table) col with
  | None -> raise Not_found
  | Some i ->
    let tbl = Hashtbl.create (Table.cardinality table) in
    List.iter
      (fun row ->
        let v = row.(i) in
        if not (Value.is_null v) then
          Hashtbl.replace tbl (key v)
            (row :: Option.value ~default:[] (Hashtbl.find_opt tbl (key v))))
      (Table.rows table);
    (* restore insertion order per key *)
    Hashtbl.filter_map_inplace (fun _ rows -> Some (List.rev rows)) tbl;
    { column = col; table = tbl }

let column t = t.column
let cardinality t = Hashtbl.length t.table

let lookup t v =
  if Value.is_null v then []
  else Option.value ~default:[] (Hashtbl.find_opt t.table (key v))
