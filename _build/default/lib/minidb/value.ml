type t =
  | Vint of int
  | Vfloat of float
  | Vstring of string
  | Vnull
[@@deriving show, eq, ord]

type ty = Tint | Tfloat | Tstring [@@deriving show, eq, ord]

let type_of = function
  | Vint _ -> Some Tint
  | Vfloat _ -> Some Tfloat
  | Vstring _ -> Some Tstring
  | Vnull -> None

let of_const = function
  | Sqlir.Ast.Cint n -> Vint n
  | Sqlir.Ast.Cfloat f -> Vfloat f
  | Sqlir.Ast.Cstring s -> Vstring s

let to_const = function
  | Vint n -> Some (Sqlir.Ast.Cint n)
  | Vfloat f -> Some (Sqlir.Ast.Cfloat f)
  | Vstring s -> Some (Sqlir.Ast.Cstring s)
  | Vnull -> None

let is_null = function Vnull -> true | Vint _ | Vfloat _ | Vstring _ -> false

let compare_sql a b =
  match a, b with
  | Vnull, _ | _, Vnull -> None
  | Vint x, Vint y -> Some (Stdlib.compare x y)
  | Vfloat x, Vfloat y -> Some (Stdlib.compare x y)
  | Vint x, Vfloat y -> Some (Stdlib.compare (float_of_int x) y)
  | Vfloat x, Vint y -> Some (Stdlib.compare x (float_of_int y))
  | Vstring x, Vstring y -> Some (String.compare x y)
  | Vstring _, (Vint _ | Vfloat _) | (Vint _ | Vfloat _), Vstring _ -> None

let to_string = function
  | Vint n -> string_of_int n
  | Vfloat f -> Printf.sprintf "%g" f
  | Vstring s -> s
  | Vnull -> "NULL"

let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoized recursion over (pattern index, string index) *)
  let memo = Hashtbl.create 64 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r =
        if pi = np then si = ns
        else
          match pattern.[pi] with
          | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
          | '_' -> si < ns && go (pi + 1) (si + 1)
          | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
      in
      Hashtbl.add memo (pi, si) r;
      r
  in
  go 0 0
