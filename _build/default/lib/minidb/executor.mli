(** SELECT-query evaluation over a {!Database}.

    Implements the full subset of {!Sqlir.Ast}: cartesian FROM lists,
    equi-joins, three-valued WHERE logic, grouping with aggregates, HAVING,
    DISTINCT, ORDER BY and LIMIT.

    The executor is oblivious to encryption: running the encrypted query on
    the encrypted database uses exactly this code path, because OPE
    ciphertexts compare like the integers they are and DET ciphertexts are
    equality-comparable strings. *)

type error =
  | Unknown_relation of string
  | Unknown_attribute of string
  | Ambiguous_attribute of string
  | Type_error of string
  | Unsupported of string

exception Exec_error of error

val error_to_string : error -> string

type provenance =
  | Pattr of string * string
      (** output column copied from (relation, column) *)
  | Pagg of Sqlir.Ast.agg_fn * (string * string) option
      (** aggregate output over an optional (relation, column) *)

type result = {
  columns : string list;       (** output column labels *)
  provenance : provenance list;
  tuples : Value.t list list;  (** in output order *)
}

val run : Database.t -> Sqlir.Ast.query -> result
(** @raise Exec_error on invalid queries (unknown names, type errors). *)

val result_tuple_set : result -> Value.t list list
(** Deduplicated, sorted tuple set — the [result tuples(Q)] of Definition 4. *)
