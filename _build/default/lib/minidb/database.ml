module Smap = Map.Make (String)

type t = {
  tables : Table.t Smap.t;
  indexes : (string * string, Index.t) Hashtbl.t;
}

let empty = { tables = Smap.empty; indexes = Hashtbl.create 4 }

let add_table t table =
  let rel = (Table.schema table).Schema.rel in
  if Smap.mem rel t.tables then
    invalid_arg (Printf.sprintf "Database.add_table: %s already exists" rel);
  { t with tables = Smap.add rel table t.tables }

let find t rel = Smap.find_opt rel t.tables

let find_exn t rel =
  match find t rel with Some table -> table | None -> raise Not_found

let relations t = Smap.bindings t.tables |> List.map fst

let tables t = Smap.bindings t.tables |> List.map snd

let total_rows t =
  Smap.fold (fun _ table acc -> acc + Table.cardinality table) t.tables 0

let map_tables f t =
  { tables = Smap.map f t.tables; indexes = Hashtbl.create 4 }

let with_index t ~rel ~col =
  let table = find_exn t rel in
  let idx = Index.build table col in
  let indexes = Hashtbl.copy t.indexes in
  Hashtbl.replace indexes (rel, col) idx;
  { t with indexes }

let find_index t ~rel ~col = Hashtbl.find_opt t.indexes (rel, col)
