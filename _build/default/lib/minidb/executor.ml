module Ast = Sqlir.Ast

type error =
  | Unknown_relation of string
  | Unknown_attribute of string
  | Ambiguous_attribute of string
  | Type_error of string
  | Unsupported of string

exception Exec_error of error

let error_to_string = function
  | Unknown_relation r -> "unknown relation " ^ r
  | Unknown_attribute a -> "unknown attribute " ^ a
  | Ambiguous_attribute a -> "ambiguous attribute " ^ a
  | Type_error m -> "type error: " ^ m
  | Unsupported m -> "unsupported: " ^ m

let fail e = raise (Exec_error e)

type provenance =
  | Pattr of string * string
  | Pagg of Sqlir.Ast.agg_fn * (string * string) option

type result = {
  columns : string list;
  provenance : provenance list;
  tuples : Value.t list list;
}

(* an evaluation environment: one entry per relation in scope *)
type env = (string * Schema.t * Value.t array) list

let resolve_in_env (env : env) (a : Ast.attr) : Value.t =
  match a.rel with
  | Some r ->
    (match List.find_opt (fun (name, _, _) -> name = r) env with
     | None -> fail (Unknown_relation r)
     | Some (_, schema, row) ->
       (match Schema.index_of schema a.name with
        | None -> fail (Unknown_attribute (r ^ "." ^ a.name))
        | Some i -> row.(i)))
  | None ->
    let hits =
      List.filter_map
        (fun (_, schema, row) ->
          Option.map (fun i -> row.(i)) (Schema.index_of schema a.name))
        env
    in
    (match hits with
     | [ v ] -> v
     | [] -> fail (Unknown_attribute a.name)
     | _ :: _ :: _ -> fail (Ambiguous_attribute a.name))

(* which (relation, column) does an attribute denote, given the schemas in
   scope?  Used for provenance and for static checks. *)
let resolve_origin (schemas : Schema.t list) (a : Ast.attr) : string * string =
  match a.rel with
  | Some r ->
    (match List.find_opt (fun s -> s.Schema.rel = r) schemas with
     | None -> fail (Unknown_relation r)
     | Some s ->
       if Schema.index_of s a.name = None then
         fail (Unknown_attribute (r ^ "." ^ a.name))
       else (r, a.name))
  | None ->
    let hits =
      List.filter (fun s -> Schema.index_of s a.name <> None) schemas
    in
    (match hits with
     | [ s ] -> (s.Schema.rel, a.name)
     | [] -> fail (Unknown_attribute a.name)
     | _ :: _ :: _ -> fail (Ambiguous_attribute a.name))

(* three-valued logic *)
type tv = T | F | U

let tv_and a b =
  match a, b with F, _ | _, F -> F | T, T -> T | _ -> U

let tv_or a b =
  match a, b with T, _ | _, T -> T | F, F -> F | _ -> U

let tv_not = function T -> F | F -> T | U -> U

let tv_of_cmp (c : Ast.cmp) (n : int) =
  let holds =
    match c with
    | Ast.Eq -> n = 0
    | Ast.Neq -> n <> 0
    | Ast.Lt -> n < 0
    | Ast.Le -> n <= 0
    | Ast.Gt -> n > 0
    | Ast.Ge -> n >= 0
  in
  if holds then T else F

let compare_values a b =
  match Value.compare_sql a b with
  | Some n -> Some n
  | None -> if Value.is_null a || Value.is_null b then None
    else fail (Type_error
                 (Printf.sprintf "cannot compare %s with %s"
                    (Value.to_string a) (Value.to_string b)))

let rec eval_pred (env : env) (p : Ast.pred) : tv =
  match p with
  | Ast.Cmp (c, a, v) ->
    (match compare_values (resolve_in_env env a) (Value.of_const v) with
     | None -> U
     | Some n -> tv_of_cmp c n)
  | Ast.Cmp_attrs (c, a, b) ->
    (match compare_values (resolve_in_env env a) (resolve_in_env env b) with
     | None -> U
     | Some n -> tv_of_cmp c n)
  | Ast.Between (a, lo, hi) ->
    let v = resolve_in_env env a in
    (match compare_values v (Value.of_const lo), compare_values v (Value.of_const hi) with
     | Some x, Some y -> if x >= 0 && y <= 0 then T else F
     | _ -> U)
  | Ast.In_list (a, vs) ->
    let v = resolve_in_env env a in
    if Value.is_null v then U
    else if List.exists (fun c -> Value.equal v (Value.of_const c)) vs then T
    else F
  | Ast.Like (a, pat) ->
    (match resolve_in_env env a with
     | Value.Vnull -> U
     | Value.Vstring s -> if Value.like_match ~pattern:pat s then T else F
     | v -> fail (Type_error ("LIKE on non-string " ^ Value.to_string v)))
  | Ast.Is_null a -> if Value.is_null (resolve_in_env env a) then T else F
  | Ast.Is_not_null a -> if Value.is_null (resolve_in_env env a) then F else T
  | Ast.Cmp_agg _ ->
    fail (Unsupported "aggregate predicate outside HAVING")
  | Ast.And (l, r) -> tv_and (eval_pred env l) (eval_pred env r)
  | Ast.Or (l, r) -> tv_or (eval_pred env l) (eval_pred env r)
  | Ast.Not q -> tv_not (eval_pred env q)

(* ---- aggregates ---- *)

let agg_eval (fn : Ast.agg_fn) (arg : Ast.attr option) (group : env list) : Value.t =
  match fn, arg with
  | Ast.Count, None -> Value.Vint (List.length group)
  | Ast.Count, Some a ->
    Value.Vint
      (List.length
         (List.filter (fun env -> not (Value.is_null (resolve_in_env env a))) group))
  | (Ast.Sum | Ast.Avg | Ast.Min | Ast.Max), None ->
    fail (Unsupported "aggregate over *")
  | fn, Some a ->
    let vs =
      List.filter_map
        (fun env ->
          let v = resolve_in_env env a in
          if Value.is_null v then None else Some v)
        group
    in
    if vs = [] then Value.Vnull
    else begin
      match fn with
      | Ast.Min | Ast.Max ->
        let pick cmp x y =
          match compare_values x y with
          | Some n -> if cmp n then x else y
          | None -> x
        in
        let f = if fn = Ast.Min then (fun n -> n < 0) else fun n -> n > 0 in
        List.fold_left (pick f) (List.hd vs) (List.tl vs)
      | Ast.Sum | Ast.Avg ->
        let as_float = List.exists (function Value.Vfloat _ -> true | _ -> false) vs in
        let total =
          List.fold_left
            (fun acc v ->
              match v with
              | Value.Vint n -> acc +. float_of_int n
              | Value.Vfloat f -> acc +. f
              | v -> fail (Type_error ("SUM/AVG over non-numeric " ^ Value.to_string v)))
            0.0 vs
        in
        if fn = Ast.Avg then Value.Vfloat (total /. float_of_int (List.length vs))
        else if as_float then Value.Vfloat total
        else Value.Vint (int_of_float total)
      | Ast.Count -> assert false
    end

let rec eval_having (group : env list) (repr : env) (p : Ast.pred) : tv =
  match p with
  | Ast.Cmp_agg (c, fn, arg, v) ->
    (match compare_values (agg_eval fn arg group) (Value.of_const v) with
     | None -> U
     | Some n -> tv_of_cmp c n)
  | Ast.And (l, r) -> tv_and (eval_having group repr l) (eval_having group repr r)
  | Ast.Or (l, r) -> tv_or (eval_having group repr l) (eval_having group repr r)
  | Ast.Not q -> tv_not (eval_having group repr q)
  | p ->
    (* non-aggregate predicates refer to group-by attributes, which are
       constant inside the group: evaluate on the representative row *)
    eval_pred repr p

(* ---- the pipeline ---- *)

let scan (db : Database.t) (rel : string) : (string * Schema.t * Value.t array) Seq.t =
  match Database.find db rel with
  | None -> fail (Unknown_relation rel)
  | Some table ->
    let schema = Table.schema table in
    List.to_seq (Table.rows table) |> Seq.map (fun row -> (rel, schema, row))

let cartesian (envs : env list) (more : (string * Schema.t * Value.t array) Seq.t) : env list =
  let entries = List.of_seq more in
  List.concat_map (fun env -> List.map (fun e -> env @ [ e ]) entries) envs

let run (db : Database.t) (q : Ast.query) : result =
  if q.Ast.from = [] then fail (Unsupported "empty FROM");
  (* duplicate relation mentions would make resolution ambiguous *)
  let rels = q.Ast.from @ List.map (fun j -> j.Ast.jrel) q.Ast.joins in
  if List.length (List.sort_uniq String.compare rels) <> List.length rels then
    fail (Unsupported "self-joins / duplicate relation mentions");
  let schemas =
    List.map
      (fun r ->
        match Database.find db r with
        | None -> fail (Unknown_relation r)
        | Some t -> Table.schema t)
      rels
  in
  (* Static validation: resolve every attribute and type-check every
     predicate against the schemas BEFORE touching any rows, like a real
     SQL engine.  This makes error behavior independent of the data — a
     prerequisite for index prefilters and empty-input short-cuts to be
     semantics-preserving (the differential property test enforces it). *)
  let kind_of_column a =
    let r, c = resolve_origin schemas a in
    let schema = List.find (fun s -> s.Schema.rel = r) schemas in
    match Schema.column_type schema c with
    | Some (Value.Tint | Value.Tfloat) -> `Num
    | Some Value.Tstring -> `Str
    | None -> assert false
  in
  let kind_of_const = function
    | Sqlir.Ast.Cint _ | Sqlir.Ast.Cfloat _ -> `Num
    | Sqlir.Ast.Cstring _ -> `Str
  in
  let require_comparable a v =
    if kind_of_column a <> kind_of_const v then
      fail
        (Type_error
           (Printf.sprintf "cannot compare %s with %s"
              (Sqlir.Printer.attr_to_string a)
              (Sqlir.Printer.const_to_string v)))
  in
  let check_agg fn arg v =
    match fn, arg with
    | Ast.Count, _ ->
      if Option.fold ~none:false ~some:(fun c -> kind_of_const c <> `Num) v then
        fail (Type_error "COUNT compares against a number");
      Option.iter (fun a -> ignore (resolve_origin schemas a)) arg
    | (Ast.Sum | Ast.Avg), Some a ->
      if kind_of_column a <> `Num then
        fail (Type_error ("SUM/AVG over non-numeric " ^ Sqlir.Printer.attr_to_string a));
      Option.iter
        (fun c -> if kind_of_const c <> `Num then
            fail (Type_error "SUM/AVG compares against a number"))
        v
    | (Ast.Min | Ast.Max), Some a ->
      Option.iter (fun c -> require_comparable a c) v
    | (Ast.Sum | Ast.Avg | Ast.Min | Ast.Max), None ->
      fail (Unsupported "aggregate over *")
  in
  let rec check_pred ~in_having p =
    match p with
    | Ast.Cmp (_, a, v) -> require_comparable a v
    | Ast.Cmp_attrs (_, a, b) ->
      if kind_of_column a <> kind_of_column b then
        fail
          (Type_error
             (Printf.sprintf "cannot compare %s with %s"
                (Sqlir.Printer.attr_to_string a) (Sqlir.Printer.attr_to_string b)))
    | Ast.Between (a, lo, hi) ->
      require_comparable a lo;
      require_comparable a hi
    | Ast.In_list (a, vs) -> List.iter (require_comparable a) vs
    | Ast.Like (a, _) ->
      if kind_of_column a <> `Str then
        fail (Type_error ("LIKE on non-string " ^ Sqlir.Printer.attr_to_string a))
    | Ast.Is_null a | Ast.Is_not_null a -> ignore (resolve_origin schemas a)
    | Ast.Cmp_agg (_, fn, arg, v) ->
      if not in_having then fail (Unsupported "aggregate predicate outside HAVING");
      check_agg fn arg (Some v)
    | Ast.And (l, r) | Ast.Or (l, r) ->
      check_pred ~in_having l;
      check_pred ~in_having r
    | Ast.Not p -> check_pred ~in_having p
  in
  Option.iter (check_pred ~in_having:false) q.Ast.where;
  Option.iter (check_pred ~in_having:true) q.Ast.having;
  List.iter (fun a -> ignore (resolve_origin schemas a)) q.Ast.group_by;
  List.iter (fun (a, _) -> ignore (resolve_origin schemas a)) q.Ast.order_by;
  let static_grouped =
    q.Ast.group_by <> []
    || List.exists (function Ast.Sel_agg _ -> true | _ -> false) q.Ast.select
    || q.Ast.having <> None
  in
  List.iter
    (function
      | Ast.Star ->
        if static_grouped then fail (Unsupported "SELECT * with grouping")
      | Ast.Sel_attr (a, _) ->
        ignore (resolve_origin schemas a);
        if static_grouped && not (List.exists (Ast.equal_attr a) q.Ast.group_by)
        then
          fail
            (Unsupported
               (Printf.sprintf "non-grouped attribute %s in aggregate query"
                  a.Ast.name))
      | Ast.Sel_agg (fn, arg, _) -> check_agg fn arg None)
    q.Ast.select;
  List.iter
    (fun (j : Ast.join) ->
      (* join attributes resolve within the prefix of relations that are in
         scope once the join applies; the full-scope check suffices here *)
      ignore (resolve_origin schemas j.Ast.jleft);
      ignore (resolve_origin schemas j.Ast.jright))
    q.Ast.joins;
  (* FROM.  For the single-relation case, an attached equality index can
     prefilter the scan: rows not matching an indexed top-level equality
     conjunct can never satisfy WHERE, and WHERE is still evaluated in full
     afterwards, so this is semantics-preserving. *)
  let indexed_scan rel =
    let default () = scan db rel in
    match q.Ast.from, q.Ast.joins, q.Ast.where with
    | [ _ ], [], Some where ->
      let rec conjuncts p =
        match p with Ast.And (l, r) -> conjuncts l @ conjuncts r | p -> [ p ]
      in
      let type_compatible (a : Ast.attr) v =
        (* a type-mismatched probe must NOT shortcut to the empty index
           bucket: the full scan raises the SQL type error *)
        match Database.find db rel with
        | None -> false
        | Some table ->
          (match Schema.column_type (Table.schema table) a.Ast.name, v with
           | Some (Value.Tint | Value.Tfloat), (Ast.Cint _ | Ast.Cfloat _) -> true
           | Some Value.Tstring, Ast.Cstring _ -> true
           | _ -> false)
      in
      let usable =
        List.find_map
          (function
            | Ast.Cmp (Ast.Eq, a, v)
              when (a.Ast.rel = None || a.Ast.rel = Some rel)
                   && type_compatible a v ->
              (match Database.find_index db ~rel ~col:a.Ast.name with
               | Some idx -> Some (idx, v)
               | None -> None)
            | _ -> None)
          (conjuncts where)
      in
      (match usable with
       | Some (idx, v) ->
         let schema =
           match Database.find db rel with
           | Some t -> Table.schema t
           | None -> fail (Unknown_relation rel)
         in
         Index.lookup idx (Value.of_const v)
         |> List.to_seq
         |> Seq.map (fun row -> (rel, schema, row))
       | None -> default ())
    | _ -> default ()
  in
  let envs =
    List.fold_left
      (fun acc rel -> cartesian acc (indexed_scan rel))
      [ [] ] q.Ast.from
  in
  (* JOINs: inner keeps matches only; left keeps unmatched left rows padded
     with an all-null row for the joined relation.  When the ON predicate
     cleanly splits into one attribute per side, a hash join turns the
     O(|left| * |right|) nested loop into O(|left| + |right|). *)
  let join_step (acc, env_schemas) (j : Ast.join) =
    let jschema =
      match Database.find db j.Ast.jrel with
      | None -> fail (Unknown_relation j.Ast.jrel)
      | Some table -> Table.schema table
    in
    let entries = List.of_seq (scan db j.Ast.jrel) in
    let null_entry =
      (j.Ast.jrel, jschema, Array.make (Schema.arity jschema) Value.Vnull)
    in
    let hits_in schemas (a : Ast.attr) =
      List.length
        (List.filter
           (fun (rel, schema) ->
             (a.Ast.rel = None || a.Ast.rel = Some rel)
             && Schema.index_of schema a.Ast.name <> None)
           schemas)
    in
    let entry_schemas = [ (j.Ast.jrel, jschema) ] in
    let side a = (hits_in entry_schemas a, hits_in env_schemas a) in
    let plan =
      match side j.Ast.jleft, side j.Ast.jright with
      | (1, 0), (0, 1) -> Some (j.Ast.jleft, j.Ast.jright)
      | (0, 1), (1, 0) -> Some (j.Ast.jright, j.Ast.jleft)
      | _ -> None  (* ambiguous or degenerate: nested loop decides/raises *)
    in
    let joined =
      match plan with
      | Some (entry_attr, env_attr) ->
        (* ints and floats compare numerically in SQL, so they must share a
           hash key (exact for the integer magnitudes this engine stores) *)
        let key = function
          | Value.Vint n -> Value.Vfloat (float_of_int n)
          | v -> v
        in
        let index : (Value.t, (string * Schema.t * Value.t array) list) Hashtbl.t =
          Hashtbl.create (List.length entries)
        in
        List.iter
          (fun entry ->
            let v = resolve_in_env [ entry ] entry_attr in
            if not (Value.is_null v) then
              Hashtbl.replace index (key v)
                (entry :: Option.value ~default:[] (Hashtbl.find_opt index (key v))))
          entries;
        List.concat_map
          (fun env ->
            let v = resolve_in_env env env_attr in
            let hits =
              if Value.is_null v then []
              else
                List.rev (Option.value ~default:[] (Hashtbl.find_opt index (key v)))
            in
            match hits, j.Ast.jkind with
            | [], Ast.Left -> [ env @ [ null_entry ] ]
            | [], Ast.Inner -> []
            | hits, _ -> List.map (fun entry -> env @ [ entry ]) hits)
          acc
      | None ->
        let matches env =
          List.filter
            (fun entry ->
              let env' = env @ [ entry ] in
              match
                compare_values (resolve_in_env env' j.Ast.jleft)
                  (resolve_in_env env' j.Ast.jright)
              with
              | Some 0 -> true
              | Some _ | None -> false)
            entries
        in
        List.concat_map
          (fun env ->
            match matches env, j.Ast.jkind with
            | [], Ast.Left -> [ env @ [ null_entry ] ]
            | [], Ast.Inner -> []
            | hits, _ -> List.map (fun entry -> env @ [ entry ]) hits)
          acc
    in
    (joined, env_schemas @ entry_schemas)
  in
  let from_schemas =
    List.map
      (fun r ->
        match Database.find db r with
        | None -> fail (Unknown_relation r)
        | Some t -> (r, Table.schema t))
      q.Ast.from
  in
  let envs = fst (List.fold_left join_step (envs, from_schemas) q.Ast.joins) in
  (* WHERE *)
  let envs =
    match q.Ast.where with
    | None -> envs
    | Some p -> List.filter (fun env -> eval_pred env p = T) envs
  in
  let has_agg =
    List.exists (function Ast.Sel_agg _ -> true | _ -> false) q.Ast.select
    || q.Ast.having <> None
  in
  let grouped = q.Ast.group_by <> [] || has_agg in
  let expand_star () =
    List.concat_map
      (fun s -> List.map (fun c -> (s.Schema.rel, c)) (Schema.column_names s))
      schemas
  in
  let item_provenance = function
    | Ast.Star -> List.map (fun (r, c) -> Pattr (r, c)) (expand_star ())
    | Ast.Sel_attr (a, _) ->
      let r, c = resolve_origin schemas a in
      [ Pattr (r, c) ]
    | Ast.Sel_agg (fn, arg, _) ->
      [ Pagg (fn, Option.map (resolve_origin schemas) arg) ]
  in
  let provenance = List.concat_map item_provenance q.Ast.select in
  let default_label = function
    | Pattr (_, c) -> c
    | Pagg (fn, arg) ->
      let fn_name =
        match fn with
        | Ast.Count -> "count" | Ast.Sum -> "sum" | Ast.Avg -> "avg"
        | Ast.Min -> "min" | Ast.Max -> "max"
      in
      (match arg with None -> fn_name | Some (_, c) -> fn_name ^ "_" ^ c)
  in
  let item_labels = function
    | Ast.Star -> List.map (fun rc -> default_label (Pattr (fst rc, snd rc))) (expand_star ())
    | Ast.Sel_attr (a, alias) ->
      [ (match alias with
         | Some l -> l
         | None ->
           let r, c = resolve_origin schemas a in
           default_label (Pattr (r, c))) ]
    | Ast.Sel_agg (fn, arg, alias) ->
      [ (match alias with
         | Some l -> l
         | None -> default_label (Pagg (fn, Option.map (resolve_origin schemas) arg))) ]
  in
  let columns = List.concat_map item_labels q.Ast.select in
  (* produce (sort_keys, tuple) pairs *)
  let order_attrs = List.map fst q.Ast.order_by in
  let keyed_tuples =
    if not grouped then begin
      let project env =
        let item = function
          | Ast.Star ->
            List.concat_map
              (fun (_, schema, row) ->
                ignore schema;
                Array.to_list row)
              env
          | Ast.Sel_attr (a, _) -> [ resolve_in_env env a ]
          | Ast.Sel_agg _ -> assert false
        in
        let tuple = List.concat_map item q.Ast.select in
        let keys = List.map (fun a -> resolve_in_env env a) order_attrs in
        (keys, tuple)
      in
      List.map project envs
    end
    else begin
      if List.exists (function Ast.Star -> true | _ -> false) q.Ast.select then
        fail (Unsupported "SELECT * with grouping");
      (* bucket rows by group-by key *)
      let tbl = Hashtbl.create 64 in
      let order = ref [] in
      List.iter
        (fun env ->
          let key = List.map (fun a -> resolve_in_env env a) q.Ast.group_by in
          if not (Hashtbl.mem tbl key) then order := key :: !order;
          Hashtbl.replace tbl key
            (env :: (try Hashtbl.find tbl key with Not_found -> [])))
        envs;
      let groups =
        if q.Ast.group_by = [] then
          (* implicit single group, present even over an empty input *)
          [ (try Hashtbl.find tbl [] with Not_found -> []) ]
        else
          List.rev_map (fun key -> List.rev (Hashtbl.find tbl key)) !order
          |> List.rev
      in
      let project group =
        match group with
        | [] ->
          (* only the implicit group can be empty *)
          let item = function
            | Ast.Sel_agg (Ast.Count, _, _) -> [ Value.Vint 0 ]
            | Ast.Sel_agg (_, _, _) -> [ Value.Vnull ]
            | Ast.Sel_attr _ | Ast.Star -> fail (Unsupported "column without rows")
          in
          Some (([] : Value.t list), List.concat_map item q.Ast.select)
        | repr :: _ ->
          let keep =
            match q.Ast.having with
            | None -> true
            | Some p -> eval_having group repr p = T
          in
          if not keep then None
          else begin
            let item = function
              | Ast.Star -> assert false
              | Ast.Sel_attr (a, _) ->
                (* must be a group-by attribute to be well-defined *)
                if not (List.exists (Ast.equal_attr a) q.Ast.group_by) then
                  fail
                    (Unsupported
                       (Printf.sprintf "non-grouped attribute %s in aggregate query"
                          a.Ast.name));
                [ resolve_in_env repr a ]
              | Ast.Sel_agg (fn, arg, _) -> [ agg_eval fn arg group ]
            in
            let tuple = List.concat_map item q.Ast.select in
            let keys = List.map (fun a -> resolve_in_env repr a) order_attrs in
            Some (keys, tuple)
          end
      in
      List.filter_map project groups
    end
  in
  (* DISTINCT *)
  let keyed_tuples =
    if q.Ast.distinct then begin
      let seen = Hashtbl.create 64 in
      List.filter
        (fun (_, tuple) ->
          if Hashtbl.mem seen tuple then false
          else begin
            Hashtbl.add seen tuple ();
            true
          end)
        keyed_tuples
    end
    else keyed_tuples
  in
  (* ORDER BY: stable sort on the key list *)
  let keyed_tuples =
    if q.Ast.order_by = [] then keyed_tuples
    else begin
      let dirs = List.map snd q.Ast.order_by in
      let cmp (ka, _) (kb, _) =
        let rec go ks1 ks2 ds =
          match ks1, ks2, ds with
          | [], [], _ -> 0
          | k1 :: r1, k2 :: r2, d :: rd ->
            let c =
              match Value.compare_sql k1 k2 with
              | Some n -> n
              | None ->
                (* nulls sort first *)
                (match Value.is_null k1, Value.is_null k2 with
                 | true, true -> 0
                 | true, false -> -1
                 | false, true -> 1
                 | false, false -> 0)
            in
            let c = match d with Ast.Asc -> c | Ast.Desc -> -c in
            if c <> 0 then c else go r1 r2 rd
          | _ -> 0
        in
        go ka kb dirs
      in
      List.stable_sort cmp keyed_tuples
    end
  in
  let tuples = List.map snd keyed_tuples in
  let tuples =
    match q.Ast.limit with
    | None -> tuples
    | Some n -> List.filteri (fun i _ -> i < n) tuples
  in
  { columns; provenance; tuples }

let result_tuple_set r =
  List.sort_uniq (List.compare Value.compare) r.tuples
