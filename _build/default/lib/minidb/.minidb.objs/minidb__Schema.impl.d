lib/minidb/schema.pp.ml: List Option Ppx_deriving_runtime String Value
