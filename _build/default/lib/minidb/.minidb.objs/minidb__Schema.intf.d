lib/minidb/schema.pp.mli: Ppx_deriving_runtime Value
