lib/minidb/table.pp.mli: Schema Value
