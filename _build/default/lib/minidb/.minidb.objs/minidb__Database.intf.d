lib/minidb/database.pp.mli: Index Table
