lib/minidb/index.pp.ml: Array Hashtbl List Option Schema Table Value
