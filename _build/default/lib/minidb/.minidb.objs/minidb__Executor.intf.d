lib/minidb/executor.pp.mli: Database Sqlir Value
