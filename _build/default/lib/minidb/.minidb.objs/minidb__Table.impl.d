lib/minidb/table.pp.ml: Array List Printf Schema Value
