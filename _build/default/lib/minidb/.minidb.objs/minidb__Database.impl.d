lib/minidb/database.pp.ml: Hashtbl Index List Map Printf Schema String Table
