lib/minidb/value.pp.mli: Ppx_deriving_runtime Sqlir
