lib/minidb/value.pp.ml: Hashtbl Ppx_deriving_runtime Printf Sqlir Stdlib String
