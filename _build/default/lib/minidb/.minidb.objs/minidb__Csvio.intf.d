lib/minidb/csvio.pp.mli: Database Table
