lib/minidb/csvio.pp.ml: Array Buffer Database Filename List Printf Schema String Sys Table Value
