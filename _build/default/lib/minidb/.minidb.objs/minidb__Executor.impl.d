lib/minidb/executor.pp.ml: Array Database Hashtbl Index List Option Printf Schema Seq Sqlir String Table Value
