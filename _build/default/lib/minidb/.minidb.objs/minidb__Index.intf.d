lib/minidb/index.pp.mli: Table Value
