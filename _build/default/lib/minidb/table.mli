(** An in-memory relation: a schema plus its rows. *)

type t

val create : Schema.t -> t
val of_rows : Schema.t -> Value.t array list -> t
(** @raise Invalid_argument if a row's arity does not match the schema. *)

val schema : t -> Schema.t
val rows : t -> Value.t array list
(** Rows in insertion order. *)

val insert : t -> Value.t array -> t
(** Functional insert. @raise Invalid_argument on arity mismatch. *)

val cardinality : t -> int

val column_values : t -> string -> Value.t list
(** All values of the named column (with duplicates).
    @raise Not_found if the column does not exist. *)

val map_rows : (Value.t array -> Value.t array) -> Schema.t -> t -> t
(** [map_rows f schema' t] rewrites every row and installs [schema'] —
    the primitive under database encryption. *)
