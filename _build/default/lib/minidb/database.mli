(** A named collection of {!Table}s. *)

type t

val empty : t
val add_table : t -> Table.t -> t
(** @raise Invalid_argument if a relation with the same name exists. *)

val find : t -> string -> Table.t option
val find_exn : t -> string -> Table.t
(** @raise Not_found *)

val relations : t -> string list
(** Sorted relation names. *)

val tables : t -> Table.t list

val total_rows : t -> int

val map_tables : (Table.t -> Table.t) -> t -> t
(** Rewrite every table (the encrypted database is produced this way).
    Indexes are dropped (they describe the old rows). *)

(** {1 Indexes} *)

val with_index : t -> rel:string -> col:string -> t
(** Build and attach a hash index ({!Index}).  The executor uses attached
    indexes as prefilters for equality predicates; semantics never change.
    @raise Not_found if the relation or column does not exist. *)

val find_index : t -> rel:string -> col:string -> Index.t option
