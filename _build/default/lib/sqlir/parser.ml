open Lexer

exception Parse_error of string

type state = { mutable toks : token list }

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let advance st =
  match st.toks with
  | [] -> fail "unexpected end of input"
  | t :: rest ->
    st.toks <- rest;
    t

let expect_kw st kw =
  match advance st with
  | Kw k when k = kw -> ()
  | t -> fail "expected %s, found %s" kw (token_to_string t)

let expect_sym st sym =
  match advance st with
  | Sym s when s = sym -> ()
  | t -> fail "expected %s, found %s" sym (token_to_string t)

let accept_kw st kw =
  match peek st with
  | Some (Kw k) when k = kw ->
    ignore (advance st);
    true
  | _ -> false

let accept_sym st sym =
  match peek st with
  | Some (Sym s) when s = sym ->
    ignore (advance st);
    true
  | _ -> false

let ident st =
  match advance st with
  | Ident s -> s
  | t -> fail "expected identifier, found %s" (token_to_string t)

(* attr ::= ident | ident "." ident *)
let attr st =
  let first = ident st in
  if accept_sym st "." then { Ast.rel = Some first; name = ident st }
  else { Ast.rel = None; name = first }

let const st =
  match advance st with
  | Int_lit n -> Ast.Cint n
  | Float_lit f -> Ast.Cfloat f
  | Str_lit s -> Ast.Cstring s
  | t -> fail "expected constant, found %s" (token_to_string t)

let cmp_of_sym = function
  | "=" -> Some Ast.Eq
  | "<>" -> Some Ast.Neq
  | "<" -> Some Ast.Lt
  | "<=" -> Some Ast.Le
  | ">" -> Some Ast.Gt
  | ">=" -> Some Ast.Ge
  | _ -> None

let cmp st =
  match advance st with
  | Sym s ->
    (match cmp_of_sym s with
     | Some c -> c
     | None -> fail "expected comparison operator, found %s" s)
  | t -> fail "expected comparison operator, found %s" (token_to_string t)

let agg_of_kw = function
  | "COUNT" -> Some Ast.Count
  | "SUM" -> Some Ast.Sum
  | "AVG" -> Some Ast.Avg
  | "MIN" -> Some Ast.Min
  | "MAX" -> Some Ast.Max
  | _ -> None

let alias st = if accept_kw st "AS" then Some (ident st) else None

let select_item st =
  match peek st with
  | Some (Kw k) when agg_of_kw k <> None ->
    ignore (advance st);
    let fn = Option.get (agg_of_kw k) in
    expect_sym st "(";
    let arg =
      if accept_sym st "*" then
        if fn = Ast.Count then None
        else fail "%s(*) is only valid for COUNT" k
      else Some (attr st)
    in
    expect_sym st ")";
    Ast.Sel_agg (fn, arg, alias st)
  | _ ->
    let a = attr st in
    Ast.Sel_attr (a, alias st)

let select_items st =
  if accept_sym st "*" then [ Ast.Star ]
  else begin
    let rec go acc =
      let item = select_item st in
      if accept_sym st "," then go (item :: acc) else List.rev (item :: acc)
    in
    go []
  end

(* atom with attribute on the left, already consumed *)
let atom_after_attr st a =
  let negated = accept_kw st "NOT" in
  let wrap p = if negated then Ast.Not p else p in
  match peek st with
  | Some (Kw "BETWEEN") ->
    ignore (advance st);
    let lo = const st in
    expect_kw st "AND";
    let hi = const st in
    wrap (Ast.Between (a, lo, hi))
  | Some (Kw "IN") ->
    ignore (advance st);
    expect_sym st "(";
    let rec go acc =
      let v = const st in
      if accept_sym st "," then go (v :: acc) else List.rev (v :: acc)
    in
    let vs = go [] in
    expect_sym st ")";
    wrap (Ast.In_list (a, vs))
  | Some (Kw "LIKE") ->
    ignore (advance st);
    (match advance st with
     | Str_lit pat -> wrap (Ast.Like (a, pat))
     | t -> fail "expected pattern string after LIKE, found %s" (token_to_string t))
  | Some (Kw "IS") ->
    if negated then fail "NOT before IS is not supported; use IS NOT NULL";
    ignore (advance st);
    let inner_not = accept_kw st "NOT" in
    expect_kw st "NULL";
    if inner_not then Ast.Is_not_null a else Ast.Is_null a
  | _ ->
    if negated then fail "NOT must precede BETWEEN, IN or LIKE here";
    let c = cmp st in
    (match peek st with
     | Some (Int_lit _ | Float_lit _ | Str_lit _) -> Ast.Cmp (c, a, const st)
     | Some (Ident _) -> Ast.Cmp_attrs (c, a, attr st)
     | Some t -> fail "expected constant or attribute, found %s" (token_to_string t)
     | None -> fail "unexpected end of input in predicate")

let atom st =
  match peek st with
  | Some (Kw k) when agg_of_kw k <> None ->
    ignore (advance st);
    let fn = Option.get (agg_of_kw k) in
    expect_sym st "(";
    let arg =
      if accept_sym st "*" then
        if fn = Ast.Count then None
        else fail "%s(*) is only valid for COUNT" k
      else Some (attr st)
    in
    expect_sym st ")";
    let c = cmp st in
    Ast.Cmp_agg (c, fn, arg, const st)
  | Some (Int_lit _ | Float_lit _ | Str_lit _) ->
    (* constant-first comparison: normalize to attribute-first *)
    let v = const st in
    let c = cmp st in
    let a = attr st in
    Ast.Cmp (Ast.cmp_flip c, a, v)
  | _ ->
    let a = attr st in
    atom_after_attr st a

let rec pred st = or_pred st

and or_pred st =
  let left = and_pred st in
  if accept_kw st "OR" then Ast.Or (left, or_pred st) else left

and and_pred st =
  let left = unit_pred st in
  if accept_kw st "AND" then Ast.And (left, and_pred st) else left

and unit_pred st =
  if accept_kw st "NOT" then Ast.Not (unit_pred st)
  else if accept_sym st "(" then begin
    let p = pred st in
    expect_sym st ")";
    p
  end
  else atom st

let attr_list st =
  let rec go acc =
    let a = attr st in
    if accept_sym st "," then go (a :: acc) else List.rev (a :: acc)
  in
  go []

let order_list st =
  let rec go acc =
    let a = attr st in
    let dir =
      if accept_kw st "DESC" then Ast.Desc
      else begin
        ignore (accept_kw st "ASC");
        Ast.Asc
      end
    in
    if accept_sym st "," then go ((a, dir) :: acc) else List.rev ((a, dir) :: acc)
  in
  go []

let query st =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let select = select_items st in
  expect_kw st "FROM";
  let rec from_list acc =
    let r = ident st in
    if accept_sym st "," then from_list (r :: acc) else List.rev (r :: acc)
  in
  let from = from_list [] in
  let rec joins acc =
    let kind =
      if accept_kw st "INNER" then begin
        expect_kw st "JOIN";
        Some Ast.Inner
      end
      else if accept_kw st "LEFT" then begin
        ignore (accept_kw st "OUTER");
        expect_kw st "JOIN";
        Some Ast.Left
      end
      else if accept_kw st "JOIN" then Some Ast.Inner
      else None
    in
    match kind with
    | Some jkind ->
      let jrel = ident st in
      expect_kw st "ON";
      let jleft = attr st in
      expect_sym st "=";
      let jright = attr st in
      joins ({ Ast.jkind; jrel; jleft; jright } :: acc)
    | None -> List.rev acc
  in
  let joins = joins [] in
  let where = if accept_kw st "WHERE" then Some (pred st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      attr_list st
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (pred st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      order_list st
    end
    else []
  in
  let limit =
    if accept_kw st "LIMIT" then begin
      match advance st with
      | Int_lit n -> Some n
      | t -> fail "expected integer after LIMIT, found %s" (token_to_string t)
    end
    else None
  in
  ignore (accept_sym st ";");
  (match st.toks with
   | [] -> ()
   | t :: _ -> fail "trailing input starting at %s" (token_to_string t));
  { Ast.distinct; select; from; joins; where; group_by; having; order_by; limit }

let parse input =
  let st = { toks = Lexer.tokenize input } in
  query st

let parse_result input =
  match parse input with
  | q -> Ok q
  | exception Parse_error msg -> Error msg
  | exception Lexer.Lex_error (msg, off) ->
    Error (Printf.sprintf "%s at offset %d" msg off)
