(** Hand-written lexer for the SQL subset.

    Also serves as the tokenizer behind the token-based query-string
    distance (Definition 3): [tokens] of a query string is the set of
    lexemes this lexer produces. *)

type token =
  | Kw of string        (** keyword, uppercased: [Kw "SELECT"] *)
  | Ident of string     (** identifier, case preserved *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string   (** contents without the quotes *)
  | Sym of string       (** punctuation / operators: [","], ["("], ["<="], … *)

val equal_token : token -> token -> bool
val pp_token : Format.formatter -> token -> unit
val token_to_string : token -> string
(** Lexeme as it would appear in SQL text (strings re-quoted). *)

exception Lex_error of string * int
(** [(message, byte offset)] *)

val tokenize : string -> token list
(** @raise Lex_error on an unrecognizable character or unterminated string. *)

val is_keyword : string -> bool
(** Case-insensitive membership in the reserved-word list. *)
