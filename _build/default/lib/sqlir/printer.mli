(** Canonical SQL text for {!Ast.query}.

    [Parser.parse (to_string q)] is structurally equal to [q] for every
    well-formed query — the round-trip property the test suite checks —
    which makes the printed form a faithful wire format for shipping
    encrypted logs to the service provider. *)

val const_to_string : Ast.const -> string
val attr_to_string : Ast.attr -> string
val cmp_to_string : Ast.cmp -> string
val pred_to_string : Ast.pred -> string
val select_item_to_string : Ast.select_item -> string
val to_string : Ast.query -> string
