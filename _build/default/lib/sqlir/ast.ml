type const =
  | Cint of int
  | Cfloat of float
  | Cstring of string
[@@deriving show, eq, ord]

type attr = {
  rel : string option;
  name : string;
}
[@@deriving show, eq, ord]

type cmp = Eq | Neq | Lt | Le | Gt | Ge [@@deriving show, eq, ord]

type agg_fn = Count | Sum | Avg | Min | Max [@@deriving show, eq, ord]

type pred =
  | Cmp of cmp * attr * const
  | Cmp_agg of cmp * agg_fn * attr option * const
  | Cmp_attrs of cmp * attr * attr
  | Between of attr * const * const
  | In_list of attr * const list
  | Like of attr * string
  | Is_null of attr
  | Is_not_null of attr
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
[@@deriving show, eq, ord]

type select_item =
  | Star
  | Sel_attr of attr * string option
  | Sel_agg of agg_fn * attr option * string option
[@@deriving show, eq, ord]

type order_dir = Asc | Desc [@@deriving show, eq, ord]

type join_kind = Inner | Left [@@deriving show, eq, ord]

type join = {
  jkind : join_kind;
  jrel : string;
  jleft : attr;
  jright : attr;
}
[@@deriving show, eq, ord]

type query = {
  distinct : bool;
  select : select_item list;
  from : string list;
  joins : join list;
  where : pred option;
  group_by : attr list;
  having : pred option;
  order_by : (attr * order_dir) list;
  limit : int option;
}
[@@deriving show, eq, ord]

let simple_query = {
  distinct = false;
  select = [ Star ];
  from = [];
  joins = [];
  where = None;
  group_by = [];
  having = None;
  order_by = [];
  limit = None;
}

let attr ?rel name = { rel; name }

let dedup xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin Hashtbl.add seen x (); true end)
    xs

let relations q =
  dedup (q.from @ List.map (fun j -> j.jrel) q.joins)

let rec pred_attrs = function
  | Cmp (_, a, _) | Between (a, _, _) | In_list (a, _) | Like (a, _)
  | Is_null a | Is_not_null a -> [ a ]
  | Cmp_agg (_, _, a, _) -> Option.to_list a
  | Cmp_attrs (_, a, b) -> [ a; b ]
  | And (p, q) | Or (p, q) -> pred_attrs p @ pred_attrs q
  | Not p -> pred_attrs p

let attributes q =
  let of_select = function
    | Star -> []
    | Sel_attr (a, _) -> [ a ]
    | Sel_agg (_, a, _) -> Option.to_list a
  in
  dedup
    (List.concat_map of_select q.select
     @ List.concat_map (fun j -> [ j.jleft; j.jright ]) q.joins
     @ (match q.where with None -> [] | Some p -> pred_attrs p)
     @ q.group_by
     @ (match q.having with None -> [] | Some p -> pred_attrs p)
     @ List.map fst q.order_by)

let predicate_atoms p =
  let rec go acc = function
    | And (p, q) | Or (p, q) -> go (go acc p) q
    | Not p -> go acc p
    | leaf -> leaf :: acc
  in
  List.rev (go [] p)

type const_ctx =
  | In_predicate of attr
  | In_aggregate of agg_fn * attr option

let map_query ~rel ~attr ~const q =
  let map_attr = attr in
  let rec map_pred = function
    | Cmp (c, a, v) -> Cmp (c, map_attr a, const (In_predicate a) v)
    | Cmp_agg (c, f, a, v) ->
      Cmp_agg (c, f, Option.map map_attr a, const (In_aggregate (f, a)) v)
    | Cmp_attrs (c, a, b) -> Cmp_attrs (c, map_attr a, map_attr b)
    | Between (a, lo, hi) ->
      Between (map_attr a, const (In_predicate a) lo, const (In_predicate a) hi)
    | In_list (a, vs) -> In_list (map_attr a, List.map (const (In_predicate a)) vs)
    | Like (a, pat) ->
      (* LIKE patterns carry constant data tied to the attribute *)
      let pat' =
        match const (In_predicate a) (Cstring pat) with
        | Cstring s -> s
        | Cint _ | Cfloat _ -> pat
      in
      Like (map_attr a, pat')
    | Is_null a -> Is_null (map_attr a)
    | Is_not_null a -> Is_not_null (map_attr a)
    | And (p, q) -> And (map_pred p, map_pred q)
    | Or (p, q) -> Or (map_pred p, map_pred q)
    | Not p -> Not (map_pred p)
  in
  (* aliases are identifiers of the query text: rename them through the
     attribute-name map (they may leak semantics just like column names) *)
  let map_alias alias =
    Option.map (fun name -> (map_attr { rel = None; name }).name) alias
  in
  let map_select = function
    | Star -> Star
    | Sel_attr (a, alias) -> Sel_attr (map_attr a, map_alias alias)
    | Sel_agg (f, a, alias) -> Sel_agg (f, Option.map map_attr a, map_alias alias)
  in
  {
    q with
    select = List.map map_select q.select;
    from = List.map rel q.from;
    joins =
      List.map
        (fun j ->
          { j with jrel = rel j.jrel; jleft = map_attr j.jleft;
            jright = map_attr j.jright })
        q.joins;
    where = Option.map map_pred q.where;
    group_by = List.map map_attr q.group_by;
    having = Option.map map_pred q.having;
    order_by = List.map (fun (a, d) -> (map_attr a, d)) q.order_by;
  }

let cmp_flip = function
  | Eq -> Eq
  | Neq -> Neq
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
