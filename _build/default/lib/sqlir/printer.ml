let const_to_string = function
  | Ast.Cint n -> string_of_int n
  | Ast.Cfloat f ->
    (* keep a dot so the lexer reads it back as a float *)
    let s = Printf.sprintf "%g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  | Ast.Cstring s -> "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"

let attr_to_string (a : Ast.attr) =
  match a.rel with None -> a.name | Some r -> r ^ "." ^ a.name

let cmp_to_string = function
  | Ast.Eq -> "="
  | Ast.Neq -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

let agg_to_string = function
  | Ast.Count -> "COUNT"
  | Ast.Sum -> "SUM"
  | Ast.Avg -> "AVG"
  | Ast.Min -> "MIN"
  | Ast.Max -> "MAX"

(* precedence: Or < And < Not < atoms; parenthesize a subterm whenever its
   operator binds looser than the context *)
let rec pred_prec = function
  | Ast.Or _ -> 1
  | Ast.And _ -> 2
  | Ast.Not _ -> 3
  | _ -> 4

and pred_to_string p = pred_str 0 p

and pred_str ctx p =
  let s =
    match p with
    | Ast.Cmp (c, a, v) ->
      Printf.sprintf "%s %s %s" (attr_to_string a) (cmp_to_string c) (const_to_string v)
    | Ast.Cmp_agg (c, f, a, v) ->
      let arg = match a with None -> "*" | Some a -> attr_to_string a in
      Printf.sprintf "%s(%s) %s %s" (agg_to_string f) arg (cmp_to_string c)
        (const_to_string v)
    | Ast.Cmp_attrs (c, a, b) ->
      Printf.sprintf "%s %s %s" (attr_to_string a) (cmp_to_string c) (attr_to_string b)
    | Ast.Between (a, lo, hi) ->
      Printf.sprintf "%s BETWEEN %s AND %s" (attr_to_string a)
        (const_to_string lo) (const_to_string hi)
    | Ast.In_list (a, vs) ->
      Printf.sprintf "%s IN (%s)" (attr_to_string a)
        (String.concat ", " (List.map const_to_string vs))
    | Ast.Like (a, pat) ->
      Printf.sprintf "%s LIKE %s" (attr_to_string a) (const_to_string (Ast.Cstring pat))
    | Ast.Is_null a -> attr_to_string a ^ " IS NULL"
    | Ast.Is_not_null a -> attr_to_string a ^ " IS NOT NULL"
    (* AND/OR parse right-associatively, so a left-nested same-operator
       child needs parentheses for the print/parse round trip to be exact *)
    | Ast.And (l, r) -> Printf.sprintf "%s AND %s" (pred_str 3 l) (pred_str 2 r)
    | Ast.Or (l, r) -> Printf.sprintf "%s OR %s" (pred_str 2 l) (pred_str 1 r)
    | Ast.Not q -> "NOT " ^ pred_str 3 q
  in
  if pred_prec p < ctx then "(" ^ s ^ ")" else s

let with_alias base = function
  | None -> base
  | Some a -> base ^ " AS " ^ a

let select_item_to_string = function
  | Ast.Star -> "*"
  | Ast.Sel_attr (a, alias) -> with_alias (attr_to_string a) alias
  | Ast.Sel_agg (f, None, alias) -> with_alias (agg_to_string f ^ "(*)") alias
  | Ast.Sel_agg (f, Some a, alias) ->
    with_alias (Printf.sprintf "%s(%s)" (agg_to_string f) (attr_to_string a)) alias

let to_string (q : Ast.query) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if q.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf (String.concat ", " (List.map select_item_to_string q.select));
  Buffer.add_string buf " FROM ";
  Buffer.add_string buf (String.concat ", " q.from);
  List.iter
    (fun (j : Ast.join) ->
      let kw = match j.Ast.jkind with Ast.Inner -> "JOIN" | Ast.Left -> "LEFT JOIN" in
      Buffer.add_string buf
        (Printf.sprintf " %s %s ON %s = %s" kw j.Ast.jrel
           (attr_to_string j.Ast.jleft) (attr_to_string j.Ast.jright)))
    q.joins;
  (match q.where with
   | None -> ()
   | Some p -> Buffer.add_string buf (" WHERE " ^ pred_to_string p));
  (match q.group_by with
   | [] -> ()
   | gs ->
     Buffer.add_string buf
       (" GROUP BY " ^ String.concat ", " (List.map attr_to_string gs)));
  (match q.having with
   | None -> ()
   | Some p -> Buffer.add_string buf (" HAVING " ^ pred_to_string p));
  (match q.order_by with
   | [] -> ()
   | os ->
     let one (a, d) =
       attr_to_string a ^ (match d with Ast.Asc -> "" | Ast.Desc -> " DESC")
     in
     Buffer.add_string buf (" ORDER BY " ^ String.concat ", " (List.map one os)));
  (match q.limit with
   | None -> ()
   | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n));
  Buffer.contents buf
