(** Abstract syntax for the SELECT subset of SQL used throughout the paper.

    The shape deliberately mirrors the paper's needs: predicates are kept in
    {e attribute-versus-constant} or {e attribute-versus-attribute} form so
    that (a) the high-level encryption scheme "(EncRel, EncAttr,
    {EncA.Const})" of §IV-A2 can locate every constant together with the
    attribute it belongs to, and (b) access areas (§IV-B4) fall out of the
    predicate structure directly.  The parser normalizes constant-first
    comparisons ([5 < a]) into this form. *)

type const =
  | Cint of int
  | Cfloat of float
  | Cstring of string
[@@deriving show, eq, ord]

type attr = {
  rel : string option;  (** qualifier, e.g. [Some "orders"] in [orders.id] *)
  name : string;
}
[@@deriving show, eq, ord]

type cmp = Eq | Neq | Lt | Le | Gt | Ge [@@deriving show, eq, ord]

type agg_fn = Count | Sum | Avg | Min | Max [@@deriving show, eq, ord]

type pred =
  | Cmp of cmp * attr * const
  | Cmp_agg of cmp * agg_fn * attr option * const
      (** aggregate comparison in HAVING, e.g. [COUNT(x) > 2] *)
  | Cmp_attrs of cmp * attr * attr    (** join-style predicate, e.g. [a.x = b.y] *)
  | Between of attr * const * const
  | In_list of attr * const list
  | Like of attr * string
  | Is_null of attr
  | Is_not_null of attr
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
[@@deriving show, eq, ord]

type select_item =
  | Star
  | Sel_attr of attr * string option
      (** attribute with an optional [AS] alias (an output label only —
          aliases cannot be referenced elsewhere in the query) *)
  | Sel_agg of agg_fn * attr option * string option
      (** [Sel_agg (Count, None, None)] is [COUNT] of star *)
[@@deriving show, eq, ord]

type order_dir = Asc | Desc [@@deriving show, eq, ord]

type join_kind = Inner | Left [@@deriving show, eq, ord]

type join = {
  jkind : join_kind;
  jrel : string;
  jleft : attr;
  jright : attr;
}
[@@deriving show, eq, ord]

type query = {
  distinct : bool;
  select : select_item list;
  from : string list;
  joins : join list;  (** [JOIN r ON a = b] clauses, in order *)
  where : pred option;
  group_by : attr list;
  having : pred option;
  order_by : (attr * order_dir) list;
  limit : int option;
}
[@@deriving show, eq, ord]

(** {1 Constructors and helpers} *)

val simple_query : query
(** [SELECT * FROM] nothing — a neutral record to override with [{ ... with }]. *)

val attr : ?rel:string -> string -> attr

val relations : query -> string list
(** All relation names mentioned ([FROM] list and [JOIN]s), in order,
    duplicates removed. *)

val attributes : query -> attr list
(** Every attribute occurrence in the query, duplicates removed. *)

val predicate_atoms : pred -> pred list
(** The leaves of the [And]/[Or]/[Not] tree, left to right. *)

type const_ctx =
  | In_predicate of attr     (** constant compared against this attribute *)
  | In_aggregate of agg_fn * attr option
      (** constant compared against an aggregate output (HAVING) *)

val map_query :
  rel:(string -> string) ->
  attr:(attr -> attr) ->
  const:(const_ctx -> const -> const) ->
  query -> query
(** Structure-preserving rewrite: rename every relation, every attribute,
    and every constant together with its context — the attribute it is
    compared against, or the aggregate whose output it bounds.  This is the
    engine under the high-level encryption scheme of §IV-A2. *)

val cmp_flip : cmp -> cmp
(** Mirror a comparison: [cmp_flip Lt = Gt], used when normalizing
    constant-first predicates. *)
