lib/sqlir/parser.pp.mli: Ast
