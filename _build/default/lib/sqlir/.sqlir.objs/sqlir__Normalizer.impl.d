lib/sqlir/normalizer.pp.ml: Ast List Option Printf String
