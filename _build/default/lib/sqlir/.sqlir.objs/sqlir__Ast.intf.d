lib/sqlir/ast.pp.mli: Ppx_deriving_runtime
