lib/sqlir/printer.pp.ml: Ast Buffer List Printf String
