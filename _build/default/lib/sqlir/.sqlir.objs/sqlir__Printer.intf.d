lib/sqlir/printer.pp.mli: Ast
