lib/sqlir/parser.pp.ml: Ast Lexer List Option Printf
