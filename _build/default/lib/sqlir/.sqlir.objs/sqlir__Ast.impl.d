lib/sqlir/ast.pp.ml: Hashtbl List Option Ppx_deriving_runtime
