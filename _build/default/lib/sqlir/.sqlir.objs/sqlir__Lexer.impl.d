lib/sqlir/lexer.pp.ml: Buffer Format List Printf String
