lib/sqlir/normalizer.pp.mli: Ast
