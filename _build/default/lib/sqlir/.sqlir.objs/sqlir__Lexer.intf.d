lib/sqlir/lexer.pp.mli: Format
