type token =
  | Kw of string
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Sym of string

let equal_token (a : token) (b : token) = a = b

let keywords =
  [ "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "JOIN"; "INNER"; "LEFT"; "OUTER";
    "ON"; "GROUP";
    "BY"; "HAVING"; "ORDER"; "ASC"; "DESC"; "LIMIT"; "AND"; "OR"; "NOT";
    "BETWEEN"; "IN"; "LIKE"; "IS"; "NULL"; "AS";
    "COUNT"; "SUM"; "AVG"; "MIN"; "MAX" ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

let token_to_string = function
  | Kw k -> k
  | Ident s -> s
  | Int_lit n -> string_of_int n
  | Float_lit f -> Printf.sprintf "%g" f
  | Str_lit s ->
    let escaped = String.concat "''" (String.split_on_char '\'' s) in
    "'" ^ escaped ^ "'"
  | Sym s -> s

let pp_token fmt t = Format.pp_print_string fmt (token_to_string t)

exception Lex_error of string * int

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      let c = input.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char input.[!j] do incr j done;
        let word = String.sub input i (!j - i) in
        let tok =
          if is_keyword word then Kw (String.uppercase_ascii word) else Ident word
        in
        go !j (tok :: acc)
      end
      else if is_digit c
              || (c = '-' && i + 1 < n && is_digit input.[i + 1]
                  && (match acc with
                      | (Int_lit _ | Float_lit _ | Ident _ | Str_lit _) :: _ -> false
                      | Sym ")" :: _ -> false
                      | _ -> true))
      then begin
        let j = ref i in
        if input.[!j] = '-' then incr j;
        while !j < n && is_digit input.[!j] do incr j done;
        let is_float =
          !j + 1 < n && input.[!j] = '.' && is_digit input.[!j + 1]
        in
        if is_float then begin
          incr j;
          while !j < n && is_digit input.[!j] do incr j done;
          go !j (Float_lit (float_of_string (String.sub input i (!j - i))) :: acc)
        end
        else go !j (Int_lit (int_of_string (String.sub input i (!j - i))) :: acc)
      end
      else if c = '\'' then begin
        (* string literal; '' escapes a quote *)
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then raise (Lex_error ("unterminated string literal", i))
          else if input.[j] = '\'' then
            if j + 1 < n && input.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              scan (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf input.[j];
            scan (j + 1)
          end
        in
        let j = scan (i + 1) in
        go j (Str_lit (Buffer.contents buf) :: acc)
      end
      else begin
        let two = if i + 1 < n then String.sub input i 2 else "" in
        match two with
        | "<=" | ">=" | "<>" | "!=" ->
          let sym = if two = "!=" then "<>" else two in
          go (i + 2) (Sym sym :: acc)
        | _ ->
          (match c with
           | ',' | '(' | ')' | '.' | '*' | '=' | '<' | '>' | ';' | '-' | '+' | '/' ->
             go (i + 1) (Sym (String.make 1 c) :: acc)
           | _ ->
             raise (Lex_error (Printf.sprintf "unexpected character %C" c, i)))
      end
    end
  in
  go 0 []
