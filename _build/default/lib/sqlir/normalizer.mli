(** Query canonicalization for log mining.

    Real query logs contain many spellings of the same intent
    ([a = 1 AND b = 2] vs [b = 2 AND a = 1], [x BETWEEN 2 AND 1] with the
    bounds swapped, duplicated IN-list members, …).  Normalizing before
    distance computation makes such pairs distance-0 and stabilizes
    clustering.

    A crucial property (verified in the test suite): normalization built
    only from {e order-free} rewrites — deduplication, flattening,
    structural sorting by shape rather than by value order — commutes with
    the DPE encryption of every measure, so owners and providers may
    normalize on either side of the encryption boundary and obtain the
    same distances.  Rewrites that need the {e value order} (sorting
    IN-list constants, reordering BETWEEN bounds) are applied only where
    order survives encryption (integers under OPE) or before encryption;
    [normalize] therefore comes in the two flavours below. *)

val normalize : Ast.query -> Ast.query
(** Full normalization (owner side, plaintext):
    - AND/OR trees flattened and right-associated with sorted,
      deduplicated conjuncts/disjuncts;
    - IN lists sorted and deduplicated; singleton IN becomes equality;
    - BETWEEN bounds ordered; degenerate BETWEEN becomes equality;
    - double negation removed; NOT pushed over comparisons
      ([NOT a < 5] → [a >= 5]);
    - duplicate select items, group-by and order-by attributes removed. *)

val normalize_cipher_safe : Ast.query -> Ast.query
(** The subset of rewrites that commutes with encryption (no value-order
    dependent rewrite on string constants; integer-ordered rewrites are
    kept because OPE preserves them). *)

val equivalent : Ast.query -> Ast.query -> bool
(** [equal_query (normalize a) (normalize b)]. *)
