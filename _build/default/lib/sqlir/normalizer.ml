(* Two flavours of the same rewriting pipeline.  [`Full] may use the value
   order of constants (owner side, plaintext); [`Cipher_safe] restricts
   itself to rewrites that commute with any deterministic injective
   constant encryption: deduplication, flattening, negation pushing, and
   sorting keyed by predicate SHAPE (constants erased) with a stable sort,
   so equal-shape conjuncts keep their original relative order on both
   sides of the encryption boundary. *)

type mode = Full | Cipher_safe

let negate_cmp = function
  | Ast.Eq -> Ast.Neq
  | Ast.Neq -> Ast.Eq
  | Ast.Lt -> Ast.Ge
  | Ast.Le -> Ast.Gt
  | Ast.Gt -> Ast.Le
  | Ast.Ge -> Ast.Lt

(* Shape key for the cipher-safe stable sort.  It must be invariant under
   encryption, so it may name neither constants NOR attributes (encrypted
   names sort differently than plaintext ones): only the operator skeleton
   remains, and equal-skeleton predicates keep their original relative
   order thanks to the stable sort. *)
let rec shape = function
  | Ast.Cmp (c, _, _) -> "cmp:" ^ Ast.show_cmp c
  | Ast.Cmp_agg (c, f, _, _) ->
    Printf.sprintf "agg:%s:%s" (Ast.show_cmp c) (Ast.show_agg_fn f)
  | Ast.Cmp_attrs (c, _, _) -> "attrs:" ^ Ast.show_cmp c
  | Ast.Between _ -> "between"
  | Ast.In_list (_, vs) -> Printf.sprintf "in:%d" (List.length vs)
  | Ast.Like _ -> "like"
  | Ast.Is_null _ -> "null"
  | Ast.Is_not_null _ -> "notnull"
  | Ast.And (l, r) -> Printf.sprintf "and(%s,%s)" (shape l) (shape r)
  | Ast.Or (l, r) -> Printf.sprintf "or(%s,%s)" (shape l) (shape r)
  | Ast.Not p -> "not(" ^ shape p ^ ")"

let sort_preds mode preds =
  match mode with
  | Full -> List.sort_uniq Ast.compare_pred preds
  | Cipher_safe ->
    (* dedup by full equality, order by shape only (stable) *)
    let dedup =
      List.fold_left
        (fun acc p -> if List.exists (Ast.equal_pred p) acc then acc else p :: acc)
        [] preds
      |> List.rev
    in
    List.stable_sort (fun a b -> String.compare (shape a) (shape b)) dedup

let rec flatten_and = function
  | Ast.And (l, r) -> flatten_and l @ flatten_and r
  | p -> [ p ]

let rec flatten_or = function
  | Ast.Or (l, r) -> flatten_or l @ flatten_or r
  | p -> [ p ]

let rec fold_right_assoc op = function
  | [] -> invalid_arg "Normalizer: empty predicate list"
  | [ p ] -> p
  | p :: rest -> op p (fold_right_assoc op rest)

let rec norm_pred mode p =
  match p with
  | Ast.Not q ->
    (* normalize the body first: a singleton IN may have just become an
       equality that the negation can then be pushed over *)
    (match norm_pred mode q with
     | Ast.Cmp (c, a, v) -> Ast.Cmp (negate_cmp c, a, v)
     | Ast.Cmp_attrs (c, a, b) -> Ast.Cmp_attrs (negate_cmp c, a, b)
     | Ast.Is_null a -> Ast.Is_not_null a
     | Ast.Is_not_null a -> Ast.Is_null a
     | Ast.Not q' -> q'
     | q' -> Ast.Not q')
  | Ast.And _ ->
    let parts = flatten_and p |> List.map (norm_pred mode) in
    (* re-flatten: children may have normalized into conjunctions *)
    let parts = List.concat_map flatten_and parts in
    fold_right_assoc (fun l r -> Ast.And (l, r)) (sort_preds mode parts)
  | Ast.Or _ ->
    let parts = flatten_or p |> List.map (norm_pred mode) in
    let parts = List.concat_map flatten_or parts in
    fold_right_assoc (fun l r -> Ast.Or (l, r)) (sort_preds mode parts)
  | Ast.In_list (a, vs) ->
    let vs =
      match mode with
      | Full -> List.sort_uniq Ast.compare_const vs
      | Cipher_safe ->
        List.fold_left
          (fun acc v -> if List.exists (Ast.equal_const v) acc then acc else v :: acc)
          [] vs
        |> List.rev
    in
    (match vs with
     | [ v ] -> Ast.Cmp (Ast.Eq, a, v)
     | vs -> Ast.In_list (a, vs))
  | Ast.Between (a, lo, hi) ->
    (match mode, lo, hi with
     | Full, _, _ when Ast.compare_const lo hi > 0 -> Ast.Between (a, hi, lo)
     | _, Ast.Cint l, Ast.Cint h when l > h ->
       (* integer bound order survives OPE, so this is cipher-safe *)
       Ast.Between (a, hi, lo)
     | _ when Ast.equal_const lo hi -> Ast.Cmp (Ast.Eq, a, lo)
     | _ -> Ast.Between (a, lo, hi))
  | Ast.Cmp _ | Ast.Cmp_attrs _ | Ast.Cmp_agg _ | Ast.Like _
  | Ast.Is_null _ | Ast.Is_not_null _ -> p

let dedup_stable equal xs =
  List.fold_left
    (fun acc x -> if List.exists (equal x) acc then acc else x :: acc)
    [] xs
  |> List.rev

let norm mode (q : Ast.query) =
  { q with
    Ast.select = dedup_stable Ast.equal_select_item q.Ast.select;
    where = Option.map (norm_pred mode) q.Ast.where;
    having = Option.map (norm_pred mode) q.Ast.having;
    group_by = dedup_stable Ast.equal_attr q.Ast.group_by;
    order_by =
      dedup_stable (fun (a, _) (b, _) -> Ast.equal_attr a b) q.Ast.order_by }

let normalize q = norm Full q
let normalize_cipher_safe q = norm Cipher_safe q

let equivalent a b = Ast.equal_query (normalize a) (normalize b)
