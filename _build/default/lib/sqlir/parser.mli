(** Recursive-descent parser for the SQL subset.

    Grammar (informally):
    {v
    query    ::= SELECT [DISTINCT] items FROM rel ("," rel)*
                 (JOIN rel ON attr cmp attr)*
                 [WHERE pred] [GROUP BY attrs] [HAVING pred]
                 [ORDER BY attr [ASC|DESC] ("," ...)*] [LIMIT int] [";"]
    items    ::= "*" | item ("," item)*
    item     ::= attr | agg "(" ("*" | attr) ")"
    pred     ::= conj (OR conj)*
    conj     ::= unit (AND unit)*
    unit     ::= [NOT] atom | "(" pred ")"
    atom     ::= attr cmp (const|attr) | const cmp attr
               | attr [NOT] BETWEEN const AND const
               | attr [NOT] IN "(" const ("," const)* ")"
               | attr [NOT] LIKE string | attr IS [NOT] NULL
    v} *)

exception Parse_error of string

val parse : string -> Ast.query
(** @raise Parse_error (or {!Lexer.Lex_error}) on invalid input. *)

val parse_result : string -> (Ast.query, string) result
(** Non-raising wrapper; the error string includes lexer errors. *)
