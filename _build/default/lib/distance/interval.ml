type bound = { v : float; incl : bool }

type ival = {
  lo : bound option;
  hi : bound option;
}

(* invariant: sorted by lower bound, pairwise disjoint and non-adjacent *)
type t = ival list

let empty : t = []
let all : t = [ { lo = None; hi = None } ]

let ival_nonempty i =
  match i.lo, i.hi with
  | None, _ | _, None -> true
  | Some a, Some b -> a.v < b.v || (a.v = b.v && a.incl && b.incl)

let of_ival i = if ival_nonempty i then [ i ] else []

let point v = of_ival { lo = Some { v; incl = true }; hi = Some { v; incl = true } }

let closed a b = of_ival { lo = Some { v = a; incl = true }; hi = Some { v = b; incl = true } }

let lower ~incl b = [ { lo = None; hi = Some { v = b; incl } } ]
let upper ~incl a = [ { lo = Some { v = a; incl }; hi = None } ]

(* order of lower bounds: -inf first; at equal value, inclusive first *)
let cmp_lo a b =
  match a, b with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y ->
    if x.v <> y.v then compare x.v y.v
    else compare (not x.incl) (not y.incl) (* incl=true sorts first *)

(* does interval [j] start no later than where [i] ends (touching counts
   only if at least one side is inclusive)? *)
let merges i j =
  match i.hi, j.lo with
  | None, _ | _, None -> true
  | Some h, Some l -> l.v < h.v || (l.v = h.v && (h.incl || l.incl))

(* max of two upper bounds *)
let max_hi a b =
  match a, b with
  | None, _ | _, None -> None
  | Some x, Some y ->
    if x.v > y.v then Some x
    else if y.v > x.v then Some y
    else Some { x with incl = x.incl || y.incl }

let normalize ivals =
  let ivals = List.filter ival_nonempty ivals in
  let sorted = List.sort (fun i j -> cmp_lo i.lo j.lo) ivals in
  let rec merge = function
    | [] -> []
    | [ i ] -> [ i ]
    | i :: j :: rest ->
      if merges i j then merge ({ lo = i.lo; hi = max_hi i.hi j.hi } :: rest)
      else i :: merge (j :: rest)
  in
  merge sorted

let union a b = normalize (a @ b)

let complement (t : t) : t =
  match t with
  | [] -> all
  | first :: _ ->
    let flip b = { b with incl = not b.incl } in
    let head =
      match first.lo with
      | None -> []
      | Some b -> [ { lo = None; hi = Some (flip b) } ]
    in
    (* in a normalized list, every interval followed by another has a finite
       upper bound, and every non-first interval has a finite lower bound *)
    let rec gaps = function
      | [] -> []
      | [ last ] ->
        (match last.hi with
         | None -> []
         | Some b -> [ { lo = Some (flip b); hi = None } ])
      | i :: (j :: _ as rest) ->
        (match i.hi, j.lo with
         | Some h, Some l ->
           { lo = Some (flip h); hi = Some (flip l) } :: gaps rest
         | _ -> assert false)
    in
    List.filter ival_nonempty (head @ gaps t)

let inter a b = complement (union (complement a) (complement b))

let is_empty t = t = []

let is_all = function
  | [ { lo = None; hi = None } ] -> true
  | _ -> false

let equal (a : t) (b : t) = a = b

let overlaps a b = not (is_empty (inter a b))

let mem v t =
  List.exists
    (fun i ->
      (match i.lo with
       | None -> true
       | Some b -> b.v < v || (b.v = v && b.incl))
      && (match i.hi with
          | None -> true
          | Some b -> v < b.v || (v = b.v && b.incl)))
    t

let intervals t = t

let map_endpoints f t =
  let map_bound = Option.map (fun b -> { b with v = f b.v }) in
  List.map (fun i -> { lo = map_bound i.lo; hi = map_bound i.hi }) t

(* lossless float rendering: the string doubles as a canonical form for
   opaque access-area atoms, where two distinct OPE ciphertext endpoints
   must never collide (%g keeps only 6 significant digits) *)
let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%h" v

let bound_to_string ~is_lo = function
  | None -> if is_lo then "(-inf" else "+inf)"
  | Some b ->
    if is_lo then
      Printf.sprintf "%c%s" (if b.incl then '[' else '(') (float_repr b.v)
    else Printf.sprintf "%s%c" (float_repr b.v) (if b.incl then ']' else ')')

let to_string t =
  if is_empty t then "{}"
  else
    String.concat " u "
      (List.map
         (fun i ->
           Printf.sprintf "%s, %s"
             (bound_to_string ~is_lo:true i.lo)
             (bound_to_string ~is_lo:false i.hi))
         t)
