let intersection_and_union_sizes ~compare a b =
  let a = List.sort_uniq compare a and b = List.sort_uniq compare b in
  let rec go inter union a b =
    match a, b with
    | [], rest | rest, [] -> (inter, union + List.length rest)
    | x :: xs, y :: ys ->
      let c = compare x y in
      if c = 0 then go (inter + 1) (union + 1) xs ys
      else if c < 0 then go inter (union + 1) xs b
      else go inter (union + 1) a ys
  in
  go 0 0 a b

let similarity ~compare a b =
  let inter, union = intersection_and_union_sizes ~compare a b in
  if union = 0 then 1.0 else float_of_int inter /. float_of_int union

let distance ~compare a b = 1.0 -. similarity ~compare a b

let distance_strings a b = distance ~compare:String.compare a b
