let levenshtein (type a) (equal : a -> a -> bool) (a : a array) (b : a array) =
  let n = Array.length a and m = Array.length b in
  if n = 0 then m
  else if m = 0 then n
  else begin
    (* one-row dynamic program *)
    let prev = Array.init (m + 1) Fun.id in
    let cur = Array.make (m + 1) 0 in
    for i = 1 to n do
      cur.(0) <- i;
      for j = 1 to m do
        let cost = if equal a.(i - 1) b.(j - 1) then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

let char_distance a b =
  levenshtein Char.equal
    (Array.init (String.length a) (String.get a))
    (Array.init (String.length b) (String.get b))

let token_seq s = Array.of_list (D_token.fuse (Sqlir.Lexer.tokenize s))

let token_distance a b =
  levenshtein String.equal (token_seq a) (token_seq b)

let distance a b =
  let ta = token_seq a and tb = token_seq b in
  let n = max (Array.length ta) (Array.length tb) in
  if n = 0 then 0.0
  else float_of_int (levenshtein String.equal ta tb) /. float_of_int n

let distance_q a b =
  distance (Sqlir.Printer.to_string a) (Sqlir.Printer.to_string b)
