(** Token-level Levenshtein (edit) query-string distance.

    The paper's Example 2 names the Levenshtein distance as an alternative
    query-string measure but does not develop it; we add it as an extension
    and prove (in the test suite) that the very same global-DET token map
    that preserves the Jaccard token distance also preserves this one:
    encryption maps the token {e sequence} element-wise and injectively, so
    every edit script carries over 1:1.

    Character-level Levenshtein, by contrast, is {e not} preservable by any
    token-wise scheme — ciphertext tokens have different lengths than their
    plaintexts — which is exactly why the measure must be defined on token
    sequences.  [char_distance] is provided for that demonstration. *)

val char_distance : string -> string -> int
(** Plain character-level Levenshtein (for the negative demonstration). *)

val token_distance : string -> string -> int
(** Edit distance between the fused token sequences of two query strings
    (insertions, deletions, substitutions of whole tokens).
    @raise Sqlir.Lexer.Lex_error on garbage. *)

val distance : string -> string -> float
(** Normalized token edit distance in [0,1]:
    [token_distance / max(len_a, len_b)]; [0] when both are empty. *)

val distance_q : Sqlir.Ast.query -> Sqlir.Ast.query -> float
