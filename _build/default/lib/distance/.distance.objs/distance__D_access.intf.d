lib/distance/d_access.pp.mli: Sqlir
