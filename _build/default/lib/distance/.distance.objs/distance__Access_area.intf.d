lib/distance/access_area.pp.mli: Interval Sqlir
