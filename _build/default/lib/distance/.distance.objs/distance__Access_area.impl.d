lib/distance/access_area.pp.ml: Interval List Option Set Sqlir String
