lib/distance/measure.pp.mli: Minidb Parallel Sqlir
