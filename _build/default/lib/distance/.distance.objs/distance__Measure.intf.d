lib/distance/measure.pp.mli: Minidb Sqlir
