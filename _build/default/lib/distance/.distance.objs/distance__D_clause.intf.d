lib/distance/d_clause.pp.mli: Sqlir
