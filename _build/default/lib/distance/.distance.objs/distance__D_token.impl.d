lib/distance/d_token.pp.ml: Jaccard List Sqlir String
