lib/distance/jaccard.pp.mli:
