lib/distance/d_edit.pp.ml: Array Char D_token Fun Sqlir String
