lib/distance/interval.pp.mli:
