lib/distance/d_result.pp.mli: Minidb Sqlir
