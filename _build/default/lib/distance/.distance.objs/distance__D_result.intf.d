lib/distance/d_result.pp.mli: Minidb Parallel Sqlir
