lib/distance/d_token.pp.mli: Sqlir
