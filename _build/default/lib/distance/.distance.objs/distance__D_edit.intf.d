lib/distance/d_edit.pp.mli: Sqlir
