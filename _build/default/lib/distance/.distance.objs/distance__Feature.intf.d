lib/distance/feature.pp.mli: Ppx_deriving_runtime Sqlir
