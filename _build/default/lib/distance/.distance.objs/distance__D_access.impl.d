lib/distance/d_access.pp.ml: Access_area List String
