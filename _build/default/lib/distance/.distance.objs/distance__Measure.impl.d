lib/distance/measure.pp.ml: Array D_access D_clause D_edit D_result D_structure D_token Minidb Parallel
