lib/distance/jaccard.pp.ml: List String
