lib/distance/d_clause.pp.ml: Jaccard List Option Printf Sqlir String
