lib/distance/d_result.pp.ml: Array Jaccard List Minidb Parallel
