lib/distance/d_structure.pp.ml: Feature Jaccard Sqlir
