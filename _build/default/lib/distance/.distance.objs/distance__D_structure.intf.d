lib/distance/d_structure.pp.mli: Sqlir
