lib/distance/feature.pp.ml: List Option Ppx_deriving_runtime Sqlir
