lib/distance/interval.pp.ml: Float List Option Printf String
