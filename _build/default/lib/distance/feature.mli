(** Query features in the style of SnipSuggest [15], used by the
    query-structure distance (§IV-B2).

    A feature is a fragment of the query's structure with all constants
    removed — e.g. the paper's Example 5 extracts
    [(SELECT, A1); (FROM, R); (WHERE, A2 >)] from
    [SELECT A1 FROM R WHERE A2 > 5].  Because constants are dropped and
    names are kept, the feature set commutes with the high-level encryption
    scheme (structural equivalence, Table I row 2). *)

type t =
  | Fselect of string                    (** attribute in SELECT *)
  | Fselect_agg of Sqlir.Ast.agg_fn * string option
  | Fdistinct
  | Ffrom of string                      (** relation *)
  | Fjoin of Sqlir.Ast.join_kind * string * string * string
      (** join kind, joined relation and the ON pair *)
  | Fwhere of string * string            (** attribute and operator shape *)
  | Fgroup_by of string
  | Fhaving of Sqlir.Ast.agg_fn * string option * string
  | Forder_by of string * Sqlir.Ast.order_dir
  | Flimit
[@@deriving show, eq, ord]

val of_query : Sqlir.Ast.query -> t list
(** The feature {e set} (sorted, deduplicated). *)

val to_string : t -> string
