(** Sets of real intervals with open/closed endpoints.

    Access areas over numeric attributes are unions of intervals.  The
    semantics is deliberately {e dense} (real-valued), not integer-valued:
    [x > 5] is the open interval (5, ∞), never rewritten to [[6, ∞)].
    This matters for distance preservation — every emptiness, equality and
    overlap test below reduces to {e order comparisons between endpoint
    values}, which a strictly monotone map (OPE) preserves exactly.  An
    integer rewrite like [c+1] would not survive encryption because OPE
    images have gaps (see DESIGN.md). *)

type bound = { v : float; incl : bool }

type ival = {
  lo : bound option;  (** [None] is -∞ *)
  hi : bound option;  (** [None] is +∞ *)
}

type t
(** A normalized (sorted, disjoint, maximal) union of intervals. *)

val empty : t
val all : t
val of_ival : ival -> t
(** Degenerate or reversed intervals normalize to {!empty}. *)

val point : float -> t
val closed : float -> float -> t
val lower : incl:bool -> float -> t
(** [lower ~incl b] is (-∞, b) or (-∞, b]. *)

val upper : incl:bool -> float -> t
(** [upper ~incl a] is (a, ∞) or [a, ∞). *)

val union : t -> t -> t
val inter : t -> t -> t
val complement : t -> t
val is_empty : t -> bool
val is_all : t -> bool
val equal : t -> t -> bool
val overlaps : t -> t -> bool
val mem : float -> t -> bool
val intervals : t -> ival list
val map_endpoints : (float -> float) -> t -> t
(** Apply a strictly increasing function to every endpoint (what OPE does
    to an access area).  Normalization is preserved. *)

val to_string : t -> string
