module Ast = Sqlir.Ast
module SS = Set.Make (String)

type t =
  | Empty
  | All
  | Num of Interval.t
  | Sfinite of string list
  | Scofinite of string list
  | Opaque of string list

let normalize = function
  | Num i when Interval.is_empty i -> Empty
  | Num i when Interval.is_all i -> All
  | Sfinite [] -> Empty
  | Scofinite [] -> All
  | Opaque [] -> Empty
  | (Empty | All | Num _ | Sfinite _ | Scofinite _ | Opaque _) as a -> a

let sorted xs = List.sort_uniq String.compare xs

let to_string = function
  | Empty -> "{}"
  | All -> "ALL"
  | Num i -> Interval.to_string i
  | Sfinite xs -> "{" ^ String.concat "," xs ^ "}"
  | Scofinite xs -> "~{" ^ String.concat "," xs ^ "}"
  | Opaque xs -> "?{" ^ String.concat "," xs ^ "}"

(* canonical rendering used when boolean structure forces an area opaque *)
let canon a = to_string a

let set_inter a b = SS.elements (SS.inter (SS.of_list a) (SS.of_list b))
let set_union a b = sorted (a @ b)
let set_diff a b = SS.elements (SS.diff (SS.of_list a) (SS.of_list b))

let rec union a b =
  match normalize a, normalize b with
  | Empty, x | x, Empty -> x
  | All, _ | _, All -> All
  | Num x, Num y -> normalize (Num (Interval.union x y))
  | Sfinite x, Sfinite y -> Sfinite (set_union x y)
  | Scofinite x, Scofinite y -> normalize (Scofinite (set_inter x y))
  | Sfinite x, Scofinite y | Scofinite y, Sfinite x ->
    normalize (Scofinite (set_diff y x))
  | Opaque x, Opaque y -> Opaque (set_union x y)
  | x, y ->
    (* heterogeneous combination: keep a faithful opaque union so equality
       stays structural.  Order the two operands deterministically by
       re-associating through Opaque atoms. *)
    union (Opaque [ canon x ]) (Opaque [ canon y ])

let rec inter a b =
  match normalize a, normalize b with
  | Empty, _ | _, Empty -> Empty
  | All, x | x, All -> x
  | Num x, Num y -> normalize (Num (Interval.inter x y))
  | Sfinite x, Sfinite y -> normalize (Sfinite (set_inter x y))
  | Scofinite x, Scofinite y -> Scofinite (set_union x y)
  | Sfinite x, Scofinite y | Scofinite y, Sfinite x ->
    normalize (Sfinite (set_diff x y))
  | Opaque x, Opaque y ->
    (* conservative: the common atoms, which both regions certainly cover *)
    normalize (Opaque (set_inter x y))
  | x, y -> inter (Opaque [ "&" ^ canon x ]) (Opaque [ "&" ^ canon y ])

let complement = function
  | Empty -> All
  | All -> Empty
  | Num i -> normalize (Num (Interval.complement i))
  | Sfinite xs -> Scofinite xs
  | Scofinite xs -> Sfinite xs
  | Opaque xs -> Opaque [ "!" ^ String.concat "," xs ]

let equal a b =
  match normalize a, normalize b with
  | Empty, Empty | All, All -> true
  | Num x, Num y -> Interval.equal x y
  | Sfinite x, Sfinite y | Scofinite x, Scofinite y | Opaque x, Opaque y ->
    sorted x = sorted y
  | _ -> false

let overlaps a b =
  match normalize a, normalize b with
  | Empty, _ | _, Empty -> false
  | All, _ | _, All -> true
  | Num x, Num y -> Interval.overlaps x y
  | Sfinite x, Sfinite y -> set_inter x y <> []
  | Sfinite x, Scofinite y | Scofinite y, Sfinite x -> set_diff x y <> []
  | Scofinite _, Scofinite _ -> true (* dense domain minus finitely many points *)
  | Opaque x, Opaque y -> set_inter x y <> []
  | (Num _ | Sfinite _ | Scofinite _), Opaque _
  | Opaque _, (Num _ | Sfinite _ | Scofinite _)
  (* a type clash between numeric and string regions cannot arise on
     well-typed attributes; be conservative if it does *)
  | Num _, (Sfinite _ | Scofinite _)
  | (Sfinite _ | Scofinite _), Num _ -> false

(* ---- extraction from queries ---- *)

let const_num = function
  | Ast.Cint n -> Some (float_of_int n)
  | Ast.Cfloat f -> Some f
  | Ast.Cstring _ -> None

let region_of_cmp c v =
  match const_num v with
  | Some f ->
    let ival =
      match c with
      | Ast.Eq -> Interval.point f
      | Ast.Neq -> Interval.complement (Interval.point f)
      | Ast.Lt -> Interval.lower ~incl:false f
      | Ast.Le -> Interval.lower ~incl:true f
      | Ast.Gt -> Interval.upper ~incl:false f
      | Ast.Ge -> Interval.upper ~incl:true f
    in
    normalize (Num ival)
  | None ->
    let s = match v with Ast.Cstring s -> s | _ -> assert false in
    (match c with
     | Ast.Eq -> Sfinite [ s ]
     | Ast.Neq -> Scofinite [ s ]
     | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
       (* order over encrypted strings is not preserved: opaque region *)
       Opaque [ Sqlir.Printer.cmp_to_string c ^ s ])

let region_of_atom ~attr_key p =
  let for_attr a = Sqlir.Printer.attr_to_string a = attr_key in
  match p with
  | Ast.Cmp (c, a, v) when for_attr a -> Some (region_of_cmp c v)
  | Ast.Between (a, lo, hi) when for_attr a ->
    (match const_num lo, const_num hi with
     | Some l, Some h -> Some (normalize (Num (Interval.closed l h)))
     | _ ->
       Some
         (Opaque
            [ "between:"
              ^ Sqlir.Printer.const_to_string lo
              ^ ":"
              ^ Sqlir.Printer.const_to_string hi ]))
  | Ast.In_list (a, vs) when for_attr a ->
    Some (List.fold_left (fun acc v -> union acc (region_of_cmp Ast.Eq v)) Empty vs)
  | Ast.Like (a, pat) when for_attr a -> Some (Opaque [ "like:" ^ pat ])
  | Ast.Is_null a when for_attr a -> Some (Opaque [ "isnull" ])
  | Ast.Is_not_null a when for_attr a -> Some All
  | Ast.Cmp _ | Ast.Between _ | Ast.In_list _ | Ast.Like _
  | Ast.Is_null _ | Ast.Is_not_null _ | Ast.Cmp_attrs _ | Ast.Cmp_agg _ ->
    None
  | Ast.And _ | Ast.Or _ | Ast.Not _ -> assert false

(* negation normal form: Not is pushed onto atoms *)
let rec nnf = function
  | Ast.Not (Ast.Not p) -> nnf p
  | Ast.Not (Ast.And (l, r)) -> Ast.Or (nnf (Ast.Not l), nnf (Ast.Not r))
  | Ast.Not (Ast.Or (l, r)) -> Ast.And (nnf (Ast.Not l), nnf (Ast.Not r))
  | Ast.And (l, r) -> Ast.And (nnf l, nnf r)
  | Ast.Or (l, r) -> Ast.Or (nnf l, nnf r)
  | p -> p

let rec area_of_pred ~attr_key p =
  match p with
  | Ast.And (l, r) -> inter (area_of_pred ~attr_key l) (area_of_pred ~attr_key r)
  | Ast.Or (l, r) -> union (area_of_pred ~attr_key l) (area_of_pred ~attr_key r)
  | Ast.Not atom ->
    (* after NNF, Not only wraps atoms *)
    (match region_of_atom ~attr_key atom with
     | Some r -> complement r
     | None -> All)  (* a negated constraint on another attribute *)
  | atom ->
    (match region_of_atom ~attr_key atom with
     | Some r -> r
     | None -> All)

let of_query (q : Ast.query) =
  let keys =
    List.map Sqlir.Printer.attr_to_string (Ast.attributes q)
    |> List.sort_uniq String.compare
  in
  let where = Option.map nnf q.Ast.where in
  List.map
    (fun attr_key ->
      let area =
        match where with
        | None -> All
        | Some p -> area_of_pred ~attr_key p
      in
      (attr_key, area))
    keys

let delta ~x a b =
  if equal a b then 0.0 else if overlaps a b then x else 1.0
