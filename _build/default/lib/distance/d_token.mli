(** Token-based query-string distance (Definition 3).

    A query is viewed as the {e set} of its lexical tokens; the distance is
    the Jaccard distance of the two token sets. *)

val fuse : Sqlir.Lexer.token list -> string list
(** Lexemes with [LIMIT n] fused into one structural token — necessary for
    token equivalence, because the LIMIT numeral stays plaintext under
    encryption while equal-looking attribute constants do not. *)

val tokens : string -> string list
(** Normalized token set of a query string (keywords uppercased, string
    literals re-quoted, LIMIT fused).
    @raise Sqlir.Lexer.Lex_error on garbage. *)

val distance : string -> string -> float
(** Distance between two query strings. *)

val distance_q : Sqlir.Ast.query -> Sqlir.Ast.query -> float
(** Distance between two parsed queries via their canonical printing. *)
