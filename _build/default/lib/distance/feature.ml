module Ast = Sqlir.Ast

type t =
  | Fselect of string
  | Fselect_agg of Sqlir.Ast.agg_fn * string option
  | Fdistinct
  | Ffrom of string
  | Fjoin of Sqlir.Ast.join_kind * string * string * string
  | Fwhere of string * string
  | Fgroup_by of string
  | Fhaving of Sqlir.Ast.agg_fn * string option * string
  | Forder_by of string * Sqlir.Ast.order_dir
  | Flimit
[@@deriving show, eq, ord]

let attr_str = Sqlir.Printer.attr_to_string

(* operator shape of a predicate atom: the constant is dropped, the
   comparison operator (or construct name) is kept *)
let rec where_features p =
  match p with
  | Ast.Cmp (c, a, _) -> [ Fwhere (attr_str a, Sqlir.Printer.cmp_to_string c) ]
  | Ast.Cmp_attrs (c, a, b) ->
    (* both attributes are structural; keep the pair *)
    [ Fwhere (attr_str a, Sqlir.Printer.cmp_to_string c ^ " " ^ attr_str b) ]
  | Ast.Between (a, _, _) -> [ Fwhere (attr_str a, "BETWEEN") ]
  | Ast.In_list (a, _) -> [ Fwhere (attr_str a, "IN") ]
  | Ast.Like (a, _) -> [ Fwhere (attr_str a, "LIKE") ]
  | Ast.Is_null a -> [ Fwhere (attr_str a, "IS NULL") ]
  | Ast.Is_not_null a -> [ Fwhere (attr_str a, "IS NOT NULL") ]
  | Ast.Cmp_agg (c, fn, arg, _) ->
    [ Fhaving (fn, Option.map attr_str arg, Sqlir.Printer.cmp_to_string c) ]
  | Ast.And (l, r) | Ast.Or (l, r) -> where_features l @ where_features r
  | Ast.Not q -> where_features q

let of_query (q : Ast.query) =
  let select_features =
    List.concat_map
      (function
        | Ast.Star -> []
        (* aliases are cosmetic output labels: structurally invisible *)
        | Ast.Sel_attr (a, _) -> [ Fselect (attr_str a) ]
        | Ast.Sel_agg (fn, arg, _) -> [ Fselect_agg (fn, Option.map attr_str arg) ])
      q.Ast.select
  in
  let feats =
    select_features
    @ (if q.Ast.distinct then [ Fdistinct ] else [])
    @ List.map (fun r -> Ffrom r) q.Ast.from
    @ List.map
        (fun (j : Ast.join) ->
          Fjoin (j.Ast.jkind, j.Ast.jrel, attr_str j.Ast.jleft, attr_str j.Ast.jright))
        q.Ast.joins
    @ (match q.Ast.where with None -> [] | Some p -> where_features p)
    @ List.map (fun a -> Fgroup_by (attr_str a)) q.Ast.group_by
    @ (match q.Ast.having with None -> [] | Some p -> where_features p)
    @ List.map (fun (a, d) -> Forder_by (attr_str a, d)) q.Ast.order_by
    @ (match q.Ast.limit with None -> [] | Some _ -> [ Flimit ])
  in
  List.sort_uniq compare feats

let to_string = show
