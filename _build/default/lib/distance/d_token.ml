(* The raw lexeme stream is post-processed in one way: a LIMIT keyword is
   fused with its numeral into a single structural token ("LIMIT 20").
   Without this, token equivalence is unachievable: the numeral of LIMIT is
   part of the query's structure and stays plaintext under encryption,
   while an equal-looking constant of some attribute is encrypted — so a
   token shared between "LIMIT 20" and "magnitude < 20" would survive on
   the plaintext side but not on the ciphertext side. *)
let fuse toks =
  let rec go = function
    | [] -> []
    | Sqlir.Lexer.Kw "LIMIT" :: Sqlir.Lexer.Int_lit n :: rest ->
      ("LIMIT " ^ string_of_int n) :: go rest
    | t :: rest -> Sqlir.Lexer.token_to_string t :: go rest
  in
  go toks

let tokens s =
  Sqlir.Lexer.tokenize s
  |> fuse
  |> List.sort_uniq String.compare

let distance a b = Jaccard.distance_strings (tokens a) (tokens b)

let distance_q a b =
  distance (Sqlir.Printer.to_string a) (Sqlir.Printer.to_string b)
