(** Query-structure distance (§IV-B2): Jaccard distance of the SnipSuggest
    feature sets ({!Feature}) of the two queries. *)

val distance : Sqlir.Ast.query -> Sqlir.Ast.query -> float

val distance_str : string -> string -> float
(** Convenience over query strings; parses both sides. *)
