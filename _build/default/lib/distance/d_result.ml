let result_set db q =
  Minidb.Executor.result_tuple_set (Minidb.Executor.run db q)

let distance db q1 q2 =
  Jaccard.distance
    ~compare:(List.compare Minidb.Value.compare)
    (result_set db q1) (result_set db q2)

let matrix db queries =
  let sets = Array.of_list (List.map (result_set db) queries) in
  let n = Array.length sets in
  let m = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d =
        Jaccard.distance ~compare:(List.compare Minidb.Value.compare)
          sets.(i) sets.(j)
      in
      m.(i).(j) <- d;
      m.(j).(i) <- d
    done
  done;
  m
