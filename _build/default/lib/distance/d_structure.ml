let distance a b =
  Jaccard.distance ~compare:Feature.compare (Feature.of_query a) (Feature.of_query b)

let distance_str a b = distance (Sqlir.Parser.parse a) (Sqlir.Parser.parse b)
