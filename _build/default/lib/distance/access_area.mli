(** Access areas of SQL queries (§IV-B4, after Nguyen et al. [16]).

    The access area of a query [Q] w.r.t. an attribute [A] is the part of
    [A]'s domain that [Q] touches.  We represent it per attribute kind:
    numeric predicates yield interval unions ({!Interval.t}), string
    equality predicates yield finite/cofinite point sets, and constructs
    with no tractable region semantics (LIKE, order on strings, IS NULL)
    yield {e opaque region atoms} whose only supported relations are
    equality and shared-atom overlap.

    Every relation used by the distance (emptiness, equality, overlap) is
    invariant under the DPE scheme of Table I row 4: interval endpoints move
    through the strictly monotone OPE map, points and opaque atoms through
    injective deterministic encryption. *)

type t =
  | Empty       (** the attribute is not accessed by the query *)
  | All         (** accessed without any restriction *)
  | Num of Interval.t
  | Sfinite of string list    (** finite set of points (sorted) *)
  | Scofinite of string list  (** complement of a finite set (sorted) *)
  | Opaque of string list     (** union of opaque region atoms (sorted) *)

val equal : t -> t -> bool
val overlaps : t -> t -> bool
(** Conservative where regions are opaque: two opaque regions overlap iff
    they share an atom. *)

val union : t -> t -> t
val inter : t -> t -> t
val complement : t -> t
val to_string : t -> string

val of_query : Sqlir.Ast.query -> (string * t) list
(** The access area of every attribute the query mentions, keyed by the
    attribute's printed form.  Attributes that appear in the query but are
    not constrained in WHERE map to {!All}. *)

val delta : x:float -> t -> t -> float
(** Definition 5's per-attribute distance: [0] if the areas are equal, [x]
    if they overlap, [1] otherwise. *)
