(** Synthetic query logs with planted cluster structure.

    A log is generated from a small number of {e templates} (user-interest
    archetypes: a sky region scan, a class lookup, an OLAP rollup, …); each
    query instantiates one template with jittered constants.  Queries from
    the same template are close under every distance measure, queries from
    different templates are far — which is what gives the mining
    experiments a meaningful ground truth. *)

type caps = {
  allow_like : bool;
  allow_sum : bool;      (** SUM/AVG aggregates *)
  allow_order_limit : bool;
  allow_join : bool;
  allow_having : bool;
}

val caps_full : caps

val caps_for_measure : Distance.Measure.t -> caps
(** Constructs the scheme cannot execute over ciphertexts are removed for
    the result measure (LIKE, SUM/AVG thresholds); everything else is
    allowed everywhere. *)

type params = {
  n : int;            (** queries in the log *)
  templates : int;    (** distinct templates (clusters), >= 1 *)
  seed : string;
  caps : caps;
}

val default_params : params

val skyserver_log : params -> Sqlir.Ast.query list
(** Log over {!Gen_db.skyserver_info}. *)

val retail_log : params -> Sqlir.Ast.query list
(** Log over {!Gen_db.retail_info}. *)

val skyserver_log_labelled : params -> (int * Sqlir.Ast.query) list
(** Each query paired with its template index — the planted clustering
    ground truth for the mining experiments. *)

val retail_log_labelled : params -> (int * Sqlir.Ast.query) list

val skyserver_sessions :
  params -> length:int -> (int * Sqlir.Ast.query list) list
(** [params.n] user sessions, each an ordered sequence of about [length]
    queries (+-2) drawn from the session's template — the input shape for
    session-level (DTW) mining.  Labelled by template. *)
