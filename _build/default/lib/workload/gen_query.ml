module Ast = Sqlir.Ast

type caps = {
  allow_like : bool;
  allow_sum : bool;
  allow_order_limit : bool;
  allow_join : bool;
  allow_having : bool;
}

let caps_full = {
  allow_like = true;
  allow_sum = true;
  allow_order_limit = true;
  allow_join = true;
  allow_having = true;
}

let caps_for_measure = function
  | Distance.Measure.Result -> { caps_full with allow_like = false; allow_sum = false }
  | Distance.Measure.Token | Distance.Measure.Structure | Distance.Measure.Access
  | Distance.Measure.Edit | Distance.Measure.Clause ->
    caps_full

type params = {
  n : int;
  templates : int;
  seed : string;
  caps : caps;
}

let default_params = { n = 60; templates = 4; seed = "log"; caps = caps_full }

let attr name = Ast.attr name
let qattr rel name = Ast.attr ~rel name

(* jitter an integer around a center, within [lo, hi]; the width scales
   with the domain so same-template queries stay close but not equal *)
let jitter rng ~lo ~hi center =
  let width = max 1 ((hi - lo) / 20) in
  let v = center + Crypto.Drbg.uniform_int rng (2 * width + 1) - width in
  max lo (min hi v)

let pick rng xs = List.nth xs (Crypto.Drbg.uniform_int rng (List.length xs))

let between rng ~lo ~hi c_lo c_hi a =
  let x = jitter rng ~lo ~hi c_lo and y = jitter rng ~lo ~hi c_hi in
  Ast.Between (a, Ast.Cint (min x y), Ast.Cint (max x y))

(* ---- SkyServer templates ---- *)

let sky_shapes caps =
  [ `Range; `Point ]
  @ (if caps.allow_join then [ `Join; `LeftJoin ] else [])
  @ [ `Count ]
  @ (if caps.allow_sum then [ `SumAgg ] else [])
  @ (if caps.allow_order_limit then [ `TopK ] else [])
  @ (if caps.allow_like then [ `Like ] else [])


type sky_template = {
  ra_center : int * int;
  dec_center : int * int;
  cls : string;
  mag_cut : int;
  z_cut : int;
  shape : int;  (* which query shape the template prefers *)
}

let sky_template rng i caps =
  let u n = Crypto.Drbg.uniform_int rng n in
  let ra = u 300_000 in
  let dec = u 150_000 - 75_000 in
  let shapes = sky_shapes caps in
  ignore i;
  { ra_center = (ra, ra + 10_000 + u 20_000);
    dec_center = (dec, dec + 5_000 + u 10_000);
    cls = pick rng [ "STAR"; "GALAXY"; "QSO"; "UNKNOWN"; "SKY"; "NEBULA" ];
    mag_cut = 15 + u 12;
    z_cut = 100 + u 3_000;
    shape = u (List.length shapes) }

let sky_query rng caps (t : sky_template) =
  let shapes = sky_shapes caps in
  let shape = List.nth shapes (t.shape mod List.length shapes) in
  let ra_lo, ra_hi = t.ra_center and dec_lo, dec_hi = t.dec_center in
  let ra_pred = between rng ~lo:0 ~hi:360_000 ra_lo ra_hi (attr "ra") in
  let dec_pred = between rng ~lo:(-90_000) ~hi:90_000 dec_lo dec_hi (attr "dec") in
  let mag_pred () =
    Ast.Cmp (Ast.Lt, attr "magnitude", Ast.Cint (jitter rng ~lo:10 ~hi:30 t.mag_cut))
  in
  let base = Ast.simple_query in
  match shape with
  | `Range ->
    let where = Ast.And (ra_pred, dec_pred) in
    let where =
      if Crypto.Drbg.uniform_int rng 2 = 0 then Ast.And (where, mag_pred ())
      else where
    in
    { base with
      select = [ Ast.Sel_attr (attr "objid", None); Ast.Sel_attr (attr "ra", None);
                 Ast.Sel_attr (attr "dec", None) ];
      from = [ "photoobj" ];
      where = Some where }
  | `Point ->
    let where = Ast.Cmp (Ast.Eq, attr "class", Ast.Cstring t.cls) in
    let where =
      if Crypto.Drbg.uniform_int rng 2 = 0 then
        Ast.And (where, Ast.Cmp (Ast.Eq, attr "flags",
                                 Ast.Cint (Crypto.Drbg.uniform_int rng 4)))
      else where
    in
    { base with
      select = [ Ast.Sel_attr (attr "objid", None); Ast.Sel_attr (attr "magnitude", None) ];
      from = [ "photoobj" ];
      where = Some where }
  | `Join ->
    { base with
      select = [ Ast.Sel_attr (qattr "photoobj" "objid", None); Ast.Sel_attr (attr "z", None) ];
      from = [ "photoobj" ];
      joins =
        [ { Ast.jkind = Ast.Inner; jrel = "specobj";
            jleft = qattr "photoobj" "objid"; jright = qattr "specobj" "objid" } ];
      where = Some (Ast.Cmp (Ast.Gt, attr "z",
                             Ast.Cint (jitter rng ~lo:0 ~hi:5_000 t.z_cut))) }
  | `LeftJoin ->
    (* objects with or without a spectroscopic match *)
    { base with
      select = [ Ast.Sel_attr (qattr "photoobj" "objid", None); Ast.Sel_attr (attr "z", None) ];
      from = [ "photoobj" ];
      joins =
        [ { Ast.jkind = Ast.Left; jrel = "specobj";
            jleft = qattr "photoobj" "objid"; jright = qattr "specobj" "objid" } ];
      where =
        Some (Ast.And (Ast.Cmp (Ast.Lt, attr "magnitude",
                                Ast.Cint (jitter rng ~lo:10 ~hi:30 t.mag_cut)),
                       Ast.Or (Ast.Is_null (attr "z"),
                               Ast.Cmp (Ast.Gt, attr "z",
                                        Ast.Cint (jitter rng ~lo:0 ~hi:5_000 t.z_cut))))) }
  | `Count ->
    let having =
      if caps.allow_having && Crypto.Drbg.uniform_int rng 2 = 0 then
        Some (Ast.Cmp_agg (Ast.Gt, Ast.Count, None,
                           Ast.Cint (1 + Crypto.Drbg.uniform_int rng 5)))
      else None
    in
    { base with
      select = [ Ast.Sel_attr (attr "class", None); Ast.Sel_agg (Ast.Count, None, None) ];
      from = [ "photoobj" ];
      where = Some (mag_pred ());
      group_by = [ attr "class" ];
      having }
  | `SumAgg ->
    { base with
      select = [ Ast.Sel_attr (attr "class", None);
                 Ast.Sel_agg (Ast.Sum, Some (attr "redshift"), Some "total_redshift") ];
      from = [ "photoobj" ];
      where = Some ra_pred;
      group_by = [ attr "class" ] }
  | `TopK ->
    { base with
      select = [ Ast.Sel_attr (attr "objid", None); Ast.Sel_attr (attr "magnitude", None) ];
      from = [ "photoobj" ];
      where = Some (Ast.Cmp (Ast.Eq, attr "class", Ast.Cstring t.cls));
      order_by = [ (attr "magnitude", Ast.Asc) ];
      limit = Some (5 + Crypto.Drbg.uniform_int rng 20) }
  | `Like ->
    { base with
      select = [ Ast.Sel_attr (attr "objid", None) ];
      from = [ "photoobj" ];
      where = Some (Ast.Like (attr "class", String.sub t.cls 0 1 ^ "%")) }

(* ---- retail templates ---- *)

type retail_template = {
  region : string;
  qty_cut : int;
  amount_center : int * int;
  category : string;
  prods : int list;
  rshape : int;
}

let retail_template rng _i =
  let u n = Crypto.Drbg.uniform_int rng n in
  let a = u 4_000 in
  { region = pick rng [ "north"; "south"; "east"; "west"; "central" ];
    qty_cut = 2 + u 15;
    amount_center = (a, a + 200 + u 800);
    category = pick rng [ "grocery"; "clothing"; "electronics"; "toys"; "garden" ];
    prods = List.init (2 + u 3) (fun _ -> 1 + u 500);
    rshape = u 1_000 }

let retail_shapes caps =
  [ `Filter; `PointCat ]
  @ (if caps.allow_join then [ `RegionJoin ] else [])
  @ (if caps.allow_sum then [ `Rollup ] else [ `CountRollup ])
  @ [ `MinMax ]

let retail_query rng caps (t : retail_template) =
  let shapes = retail_shapes caps in
  let shape = List.nth shapes (t.rshape mod List.length shapes) in
  let base = Ast.simple_query in
  let a_lo, a_hi = t.amount_center in
  let amount_pred = between rng ~lo:1 ~hi:5_000 a_lo a_hi (attr "amount") in
  match shape with
  | `Filter ->
    let prods =
      List.map (fun p -> Ast.Cint (jitter rng ~lo:1 ~hi:500 p)) t.prods
    in
    { base with
      select = [ Ast.Sel_attr (attr "saleid", None) ];
      from = [ "sales" ];
      where = Some (Ast.And (Ast.In_list (attr "prodid", prods), amount_pred)) }
  | `PointCat ->
    { base with
      select = [ Ast.Sel_attr (attr "prodid", None); Ast.Sel_attr (attr "price", None) ];
      from = [ "products" ];
      where = Some (Ast.Cmp (Ast.Eq, attr "category", Ast.Cstring t.category)) }
  | `RegionJoin ->
    { base with
      select = [ Ast.Sel_attr (qattr "sales" "saleid", None); Ast.Sel_attr (attr "amount", None) ];
      from = [ "sales" ];
      joins =
        [ { Ast.jkind = Ast.Inner; jrel = "stores";
            jleft = qattr "sales" "storeid"; jright = qattr "stores" "storeid" } ];
      where =
        Some (Ast.And (Ast.Cmp (Ast.Eq, attr "region", Ast.Cstring t.region),
                       amount_pred)) }
  | `Rollup ->
    let having =
      if caps.allow_having && Crypto.Drbg.uniform_int rng 2 = 0 then
        Some (Ast.Cmp_agg (Ast.Gt, Ast.Count, None,
                           Ast.Cint (1 + Crypto.Drbg.uniform_int rng 4)))
      else None
    in
    { base with
      select = [ Ast.Sel_attr (attr "storeid", None);
                 Ast.Sel_agg (Ast.Sum, Some (attr "amount"), Some "revenue") ];
      from = [ "sales" ];
      where = Some (Ast.Cmp (Ast.Gt, attr "qty",
                             Ast.Cint (jitter rng ~lo:1 ~hi:20 t.qty_cut)));
      group_by = [ attr "storeid" ];
      having }
  | `CountRollup ->
    { base with
      select = [ Ast.Sel_attr (attr "storeid", None); Ast.Sel_agg (Ast.Count, None, None) ];
      from = [ "sales" ];
      where = Some (Ast.Cmp (Ast.Gt, attr "qty",
                             Ast.Cint (jitter rng ~lo:1 ~hi:20 t.qty_cut)));
      group_by = [ attr "storeid" ] }
  | `MinMax ->
    { base with
      select = [ Ast.Sel_attr (attr "category", None);
                 Ast.Sel_agg (Ast.Max, Some (attr "price"), None) ];
      from = [ "products" ];
      group_by = [ attr "category" ] }

(* ---- log assembly ---- *)

let make_log ~template ~instantiate p =
  if p.templates < 1 then invalid_arg "Gen_query: templates >= 1";
  let trng = Crypto.Drbg.create ~seed:("templates/" ^ p.seed) in
  let templates = List.init p.templates (fun i -> template trng i) in
  let qrng = Crypto.Drbg.create ~seed:("queries/" ^ p.seed) in
  List.init p.n (fun _ ->
      let ti = Crypto.Drbg.uniform_int qrng p.templates in
      (ti, instantiate qrng (List.nth templates ti)))

let skyserver_log_labelled p =
  make_log p
    ~template:(fun rng i -> sky_template rng i p.caps)
    ~instantiate:(fun rng t -> sky_query rng p.caps t)

let retail_log_labelled p =
  make_log p
    ~template:(fun rng i -> retail_template rng i)
    ~instantiate:(fun rng t -> retail_query rng p.caps t)

let skyserver_log p = List.map snd (skyserver_log_labelled p)

let skyserver_sessions p ~length =
  if p.templates < 1 then invalid_arg "Gen_query: templates >= 1";
  if length < 1 then invalid_arg "Gen_query: session length >= 1";
  let trng = Crypto.Drbg.create ~seed:("templates/" ^ p.seed) in
  let templates = List.init p.templates (fun i -> sky_template trng i p.caps) in
  let qrng = Crypto.Drbg.create ~seed:("sessions/" ^ p.seed) in
  List.init p.n (fun _ ->
      let ti = Crypto.Drbg.uniform_int qrng p.templates in
      let t = List.nth templates ti in
      let len = max 1 (length - 2 + Crypto.Drbg.uniform_int qrng 5) in
      (ti, List.init len (fun _ -> sky_query qrng p.caps t)))
let retail_log p = List.map snd (retail_log_labelled p)
