lib/workload/gen_db.mli: Minidb
