lib/workload/gen_query.mli: Distance Sqlir
