lib/workload/log_io.ml: List Printf Sqlir String
