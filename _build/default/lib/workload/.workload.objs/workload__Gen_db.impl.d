lib/workload/gen_db.ml: Array Crypto List Minidb String
