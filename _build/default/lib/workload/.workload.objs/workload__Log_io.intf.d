lib/workload/log_io.mli: Sqlir
