lib/workload/gen_query.ml: Crypto Distance List Sqlir String
