(** Plain-text query-log files: one SQL query per line, blank lines and
    [#]-comments ignored.  The format both the CLI and the examples use. *)

val to_string : Sqlir.Ast.query list -> string
val of_string : string -> (Sqlir.Ast.query list, string) result
(** Errors carry the 1-based line number of the offending query. *)

val save : string -> Sqlir.Ast.query list -> (unit, string) result
val load : string -> (Sqlir.Ast.query list, string) result
