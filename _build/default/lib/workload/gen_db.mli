(** Synthetic database instances.

    The paper names no public dataset; these generators are shaped after
    the workloads it cites — an astronomy archive in the SkyServer style
    (Nguyen et al. [16]) and a retail star schema for the OLAP mining
    use case [17].  All content is drawn from a seeded DRBG, so a given
    seed always produces the same instance (see DESIGN.md, substitutions). *)

type column_info = {
  cname : string;
  cty : Minidb.Value.ty;
  lo : int;           (** numeric domain lower bound (ints only) *)
  hi : int;           (** numeric domain upper bound *)
  vocab : string list;  (** categorical vocabulary (strings only) *)
  nullable : bool;
}

type rel_info = { rname : string; columns : column_info list }

type info = { rels : rel_info list }
(** Schema metadata the query generator draws attributes/constants from. *)

val skyserver_info : info
val retail_info : info

val column : info -> string -> column_info
(** Look up a column by name across relations. @raise Not_found. *)

val skyserver : seed:string -> rows:int -> Minidb.Database.t
(** photoobj(objid, ra, dec, magnitude, redshift, class, flags) and
    specobj(specid, objid, z, template) with a foreign key from specobj
    to photoobj; [rows] sizes photoobj, specobj gets about half. *)

val retail : seed:string -> rows:int -> Minidb.Database.t
(** sales(saleid, storeid, prodid, qty, amount), stores(storeid, region,
    size), products(prodid, category, price). *)

val generate : info -> seed:string -> rows:int -> Minidb.Database.t
(** Generic generator driven by the metadata (used by both above). *)
