let to_string log =
  String.concat "\n" (List.map Sqlir.Printer.to_string log) ^ "\n"

let of_string input =
  let lines = String.split_on_char '\n' input in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go acc (lineno + 1) rest
      else begin
        match Sqlir.Parser.parse_result line with
        | Ok q -> go (q :: acc) (lineno + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
      end
  in
  go [] 1 lines

let save path log =
  match open_out path with
  | oc ->
    output_string oc (to_string log);
    close_out oc;
    Ok ()
  | exception Sys_error e -> Error e

let load path =
  match open_in_bin path with
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_string s
  | exception Sys_error e -> Error e
