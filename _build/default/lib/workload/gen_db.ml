module Value = Minidb.Value

type column_info = {
  cname : string;
  cty : Minidb.Value.ty;
  lo : int;
  hi : int;
  vocab : string list;
  nullable : bool;
}

type rel_info = { rname : string; columns : column_info list }

type info = { rels : rel_info list }

let int_col ?(nullable = false) cname lo hi =
  { cname; cty = Value.Tint; lo; hi; vocab = []; nullable }

let str_col ?(nullable = false) cname vocab =
  { cname; cty = Value.Tstring; lo = 0; hi = 0; vocab; nullable }

let skyserver_info =
  { rels =
      [ { rname = "photoobj";
          columns =
            [ int_col "objid" 1 1_000_000;
              int_col "ra" 0 360_000;       (* milli-degrees *)
              int_col "dec" (-90_000) 90_000;
              int_col "magnitude" 10 30;
              int_col ~nullable:true "redshift" 0 5_000;
              str_col "class"
                [ "STAR"; "GALAXY"; "QSO"; "UNKNOWN"; "SKY"; "NEBULA" ];
              int_col "flags" 0 255 ] };
        { rname = "specobj";
          columns =
            [ int_col "specid" 1 1_000_000;
              int_col "objid" 1 1_000_000;
              int_col "z" 0 5_000;
              str_col "template" [ "T1"; "T2"; "T3"; "T4" ] ] } ] }

let retail_info =
  { rels =
      [ { rname = "sales";
          columns =
            [ int_col "saleid" 1 10_000_000;
              int_col "storeid" 1 50;
              int_col "prodid" 1 500;
              int_col "qty" 1 20;
              int_col "amount" 1 5_000 ] };
        { rname = "stores";
          columns =
            [ int_col "storeid" 1 50;
              str_col "region" [ "north"; "south"; "east"; "west"; "central" ];
              int_col "size" 100 10_000 ] };
        { rname = "products";
          columns =
            [ int_col "prodid" 1 500;
              str_col "category"
                [ "grocery"; "clothing"; "electronics"; "toys"; "garden" ];
              int_col "price" 1 1_000 ] } ] }

let column info name =
  let rec go = function
    | [] -> raise Not_found
    | r :: rest ->
      (match List.find_opt (fun c -> c.cname = name) r.columns with
       | Some c -> c
       | None -> go rest)
  in
  go info.rels

let draw_value rng (c : column_info) =
  if c.nullable && Crypto.Drbg.uniform_int rng 10 = 0 then Value.Vnull
  else
    match c.cty with
    | Value.Tint -> Value.Vint (c.lo + Crypto.Drbg.uniform_int rng (c.hi - c.lo + 1))
    | Value.Tstring ->
      Value.Vstring (List.nth c.vocab (Crypto.Drbg.uniform_int rng (List.length c.vocab)))
    | Value.Tfloat -> Value.Vfloat (Crypto.Drbg.uniform_float rng)

let rows_for rel_index rows = if rel_index = 0 then rows else max 1 (rows / 2)

let generate info ~seed ~rows =
  let rng = Crypto.Drbg.create ~seed:("gen_db/" ^ seed) in
  List.fold_left
    (fun (db, idx) (r : rel_info) ->
      let schema =
        Minidb.Schema.make ~rel:r.rname
          (List.map (fun c -> (c.cname, c.cty)) r.columns)
      in
      let n = rows_for idx rows in
      let make_row i =
        Array.of_list
          (List.map
             (fun c ->
               (* primary-key-ish columns stay unique and dense *)
               if String.length c.cname >= 2
                  && (c.cname = "objid" && r.rname = "photoobj"
                      || c.cname = "specid" || c.cname = "saleid"
                      || (c.cname = "storeid" && r.rname = "stores")
                      || (c.cname = "prodid" && r.rname = "products"))
               then Value.Vint (i + 1)
               else if c.cname = "objid" && r.rname = "specobj" then
                 (* foreign key into photoobj's dense ids *)
                 Value.Vint (1 + Crypto.Drbg.uniform_int rng (rows_for 0 rows))
               else if c.cname = "storeid" && r.rname = "sales" then
                 Value.Vint (1 + Crypto.Drbg.uniform_int rng 50)
               else if c.cname = "prodid" && r.rname = "sales" then
                 Value.Vint (1 + Crypto.Drbg.uniform_int rng 500)
               else draw_value rng c)
             r.columns)
      in
      let table =
        Minidb.Table.of_rows schema (List.init n make_row)
      in
      (Minidb.Database.add_table db table, idx + 1))
    (Minidb.Database.empty, 0) info.rels
  |> fst

let skyserver ~seed ~rows = generate skyserver_info ~seed ~rows
let retail ~seed ~rows = generate retail_info ~seed ~rows
