module Value = Minidb.Value

type t = {
  counts : (Value.t * int) list;  (* ascending value order *)
  total : int;
}

let of_values values =
  let tbl = Hashtbl.create 64 in
  let total = ref 0 in
  List.iter
    (fun v ->
      if not (Value.is_null v) then begin
        incr total;
        Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v))
      end)
    values;
  let counts =
    Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Value.compare a b)
  in
  { counts; total = !total }

let total t = t.total
let support_size t = List.length t.counts

let ranked t =
  List.sort
    (fun (va, ca) (vb, cb) ->
      if ca <> cb then compare cb ca else Value.compare va vb)
    t.counts

let mode t = match ranked t with [] -> None | (v, _) :: _ -> Some v

let by_value_order t = t.counts

let quantile t p =
  if t.counts = [] then None
  else begin
    let target = p *. float_of_int t.total in
    let rec go acc = function
      | [] -> None
      | [ (v, _) ] -> Some v
      | (v, c) :: rest ->
        let acc' = acc + c in
        if float_of_int acc' >= target then Some v else go acc' rest
    in
    go 0 t.counts
  end
