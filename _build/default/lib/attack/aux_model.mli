(** The passive adversary's auxiliary knowledge: the distribution of
    plaintext values of one attribute (Sanamrad & Kossmann's query-log
    attack model [9] grants the attacker knowledge of domains and value
    frequencies, e.g. from public statistics about the data). *)

type t

val of_values : Minidb.Value.t list -> t
(** Build a histogram; nulls are ignored. *)

val total : t -> int
val support_size : t -> int

val mode : t -> Minidb.Value.t option
(** The most frequent value (deterministic tie-break). *)

val ranked : t -> (Minidb.Value.t * int) list
(** Values by descending frequency (ties broken by value order). *)

val by_value_order : t -> (Minidb.Value.t * int) list
(** Values in ascending value order with counts — the CDF view the sorting
    attack needs. *)

val quantile : t -> float -> Minidb.Value.t option
(** [quantile t p] is the value at cumulative position [p] in [0,1]. *)
