(** Passive attacks against property-preserving ciphertext collections.

    Each attack receives aligned [(plaintext, ciphertext)] pairs — the
    plaintexts are the evaluation ground truth, invisible to the attack —
    plus the adversary's {!Aux_model}.  The output is the fraction of cells
    whose plaintext the attack recovers, the standard metric for inference
    attacks on PPE. *)

type outcome = {
  cells : int;
  recovered : int;
  rate : float;
}

val frequency : Aux_model.t -> (Minidb.Value.t * Minidb.Value.t) list -> outcome
(** Frequency analysis against DET/JOIN: rank ciphertexts and auxiliary
    values by frequency and match ranks. *)

val sorting : Aux_model.t -> (Minidb.Value.t * Minidb.Value.t) list -> outcome
(** Rank/CDF-matching attack against OPE/JOIN-OPE (Naveed-style sorting
    attack): order ciphertexts and map each to the auxiliary value at the
    same cumulative position.  Strictly stronger than {!frequency} when the
    value order carries information. *)

val mode_guess : Aux_model.t -> (Minidb.Value.t * Minidb.Value.t) list -> outcome
(** Best generic attack against PROB/HOM: ciphertexts are unlinkable, so
    guess the most frequent auxiliary value for every cell. *)

val known_plaintext_ope :
  Aux_model.t ->
  anchors:(Minidb.Value.t * Minidb.Value.t) list ->
  (Minidb.Value.t * Minidb.Value.t) list ->
  outcome
(** The known-plaintext attack of the Sanamrad-Kossmann model against OPE:
    the adversary holds some [(plaintext, ciphertext)] anchor pairs (e.g.
    from insider knowledge).  Order-preservation sandwiches every other
    ciphertext between the plaintexts of its neighbouring anchors; the
    guess is the most frequent auxiliary value inside that interval (a
    uniquely-determined interval is certain recovery).  With enough
    anchors this dominates the ciphertext-only sorting attack. *)

val for_class :
  Dpe.Taxonomy.ppe_class ->
  Aux_model.t ->
  (Minidb.Value.t * Minidb.Value.t) list ->
  outcome
(** The best applicable attack for a ciphertext class (attacks against a
    weaker class remain applicable against a stronger leakage class, so
    measured leakage is monotone along the Fig. 1 taxonomy). *)
