module Value = Minidb.Value

type outcome = {
  cells : int;
  recovered : int;
  rate : float;
}

let make_outcome cells recovered =
  { cells; recovered;
    rate = (if cells = 0 then 0.0 else float_of_int recovered /. float_of_int cells) }

let score pairs guess_of_cipher =
  let recovered =
    List.fold_left
      (fun acc (plain, cipher) ->
        match guess_of_cipher cipher with
        | Some g when Value.equal g plain -> acc + 1
        | _ -> acc)
      0 pairs
  in
  make_outcome (List.length pairs) recovered

(* ciphertext histogram, descending frequency, deterministic tie-break *)
let cipher_ranked pairs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (_, c) ->
      Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    pairs;
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
  |> List.sort (fun (ca, na) (cb, nb) ->
         if na <> nb then compare nb na else Value.compare ca cb)

let frequency aux pairs =
  let cranks = cipher_ranked pairs in
  let aranks = Aux_model.ranked aux in
  let mapping = Hashtbl.create 64 in
  List.iteri
    (fun i (c, _) ->
      match List.nth_opt aranks i with
      | Some (v, _) -> Hashtbl.replace mapping c v
      | None -> ())
    cranks;
  score pairs (Hashtbl.find_opt mapping)

let sorting aux pairs =
  (* distinct ciphertexts in ascending order with multiplicities *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (_, c) ->
      Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    pairs;
  let by_order =
    Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Value.compare a b)
  in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 by_order in
  let mapping = Hashtbl.create 64 in
  let _ =
    List.fold_left
      (fun seen (c, n) ->
        let mid = float_of_int seen +. (float_of_int n /. 2.0) in
        let p = mid /. float_of_int total in
        (match Aux_model.quantile aux p with
         | Some v -> Hashtbl.replace mapping c v
         | None -> ());
        seen + n)
      0 by_order
  in
  score pairs (Hashtbl.find_opt mapping)

let known_plaintext_ope aux ~anchors pairs =
  (* anchors sorted by ciphertext; both components must be ordered values *)
  let anchors =
    List.sort (fun (_, c1) (_, c2) -> Value.compare c1 c2) anchors
  in
  let bounds c =
    (* the plaintext interval the target ciphertext c is squeezed into *)
    let rec go lo = function
      | [] -> (lo, None)
      | (p, ac) :: rest ->
        (match Value.compare_sql c ac with
         | Some 0 -> (Some p, Some p) (* c IS an anchor *)
         | Some n when n < 0 -> (lo, Some p)
         | _ -> go (Some p) rest)
    in
    go None anchors
  in
  let guess c =
    match bounds c with
    | Some p, Some p' when Value.equal p p' -> Some p
    | lo, hi ->
      (* candidates: auxiliary values strictly inside the sandwich *)
      let inside v =
        (match lo with
         | None -> true
         | Some l -> (match Value.compare_sql v l with Some n -> n > 0 | None -> false))
        && (match hi with
            | None -> true
            | Some h -> (match Value.compare_sql v h with Some n -> n < 0 | None -> false))
      in
      let candidates =
        List.filter (fun (v, _) -> inside v) (Aux_model.ranked aux)
      in
      (match candidates with
       | [] -> None
       | (v, _) :: _ -> Some v (* ranked: the most frequent candidate *))
  in
  score pairs guess

let mode_guess aux pairs =
  let guess = Aux_model.mode aux in
  score pairs (fun _ -> guess)

(* For each class we report the best applicable attack — the standard
   "best known attack" metric.  Every attack available against a weaker
   class is also available against a stronger leakage class (a DET
   adversary can always fall back to mode guessing when frequencies carry
   no signal), which keeps measured leakage monotone along Fig. 1. *)
let best outcomes =
  match outcomes with
  | [] -> invalid_arg "Attacks.best: no outcomes"
  | o :: rest ->
    List.fold_left (fun acc o -> if o.rate > acc.rate then o else acc) o rest

let for_class cls aux pairs =
  match cls with
  | Dpe.Taxonomy.PROB | Dpe.Taxonomy.HOM -> mode_guess aux pairs
  | Dpe.Taxonomy.DET | Dpe.Taxonomy.JOIN ->
    best [ frequency aux pairs; mode_guess aux pairs ]
  | Dpe.Taxonomy.OPE | Dpe.Taxonomy.JOIN_OPE ->
    best [ sorting aux pairs; frequency aux pairs; mode_guess aux pairs ]
