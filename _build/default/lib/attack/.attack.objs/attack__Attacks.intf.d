lib/attack/attacks.mli: Aux_model Dpe Minidb
