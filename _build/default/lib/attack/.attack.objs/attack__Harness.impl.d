lib/attack/harness.ml: Attacks Aux_model Dpe Format Fun Hashtbl List Minidb Option Sqlir String
