lib/attack/harness.mli: Attacks Dpe Format Minidb Sqlir
