lib/attack/aux_model.mli: Minidb
