lib/attack/aux_model.ml: Hashtbl List Minidb Option
