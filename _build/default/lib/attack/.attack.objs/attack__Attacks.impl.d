lib/attack/attacks.ml: Aux_model Dpe Hashtbl List Minidb Option
