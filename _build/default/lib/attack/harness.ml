module Ast = Sqlir.Ast
module Value = Minidb.Value

type row = {
  attr : string;
  cls : Dpe.Taxonomy.ppe_class;
  outcome : Attacks.outcome;
}

type report = {
  label : string;
  rows : row list;
  overall : Attacks.outcome;
}

let constants_by_attr log =
  let acc = ref [] in
  let collect ctx c =
    (match ctx with
     | Ast.In_predicate a -> acc := (a.Ast.name, c) :: !acc
     | Ast.In_aggregate (Ast.Count, _) -> ()
     | Ast.In_aggregate ((Ast.Min | Ast.Max), Some a) ->
       acc := (a.Ast.name, c) :: !acc
     | Ast.In_aggregate _ -> ());
    c
  in
  List.iter
    (fun q -> ignore (Ast.map_query ~rel:Fun.id ~attr:Fun.id ~const:collect q))
    log;
  List.rev !acc

let group_pairs plain_consts cipher_consts =
  (* keys come from the plaintext side; the cipher log is traversed in the
     same order because encryption is structure-preserving *)
  if List.length plain_consts <> List.length cipher_consts then
    invalid_arg "Harness: logs do not align";
  let tbl = Hashtbl.create 16 in
  List.iter2
    (fun (attr, pc) (_, cc) ->
      let pair = (Value.of_const pc, Value.of_const cc) in
      Hashtbl.replace tbl attr
        (pair :: Option.value ~default:[] (Hashtbl.find_opt tbl attr)))
    plain_consts cipher_consts;
  Hashtbl.fold (fun attr pairs acc -> (attr, List.rev pairs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_outcomes outcomes =
  let cells = List.fold_left (fun acc o -> acc + o.Attacks.cells) 0 outcomes in
  let recovered =
    List.fold_left (fun acc o -> acc + o.Attacks.recovered) 0 outcomes
  in
  { Attacks.cells; recovered;
    rate = (if cells = 0 then 0.0 else float_of_int recovered /. float_of_int cells) }

let report_of_groups ~label ~class_of groups =
  let rows =
    List.map
      (fun (attr, pairs) ->
        let cls = class_of attr in
        let aux = Aux_model.of_values (List.map fst pairs) in
        { attr; cls; outcome = Attacks.for_class cls aux pairs })
      groups
  in
  { label; rows; overall = merge_outcomes (List.map (fun r -> r.outcome) rows) }

let attack_log ~label ~class_of ~plain ~cipher =
  let groups = group_pairs (constants_by_attr plain) (constants_by_attr cipher) in
  report_of_groups ~label ~class_of groups

let names_by_position log =
  let acc = ref [] in
  let collect_rel r = acc := ("rel", r) :: !acc; r in
  let collect_attr (a : Ast.attr) =
    Option.iter (fun r -> acc := ("rel", r) :: !acc) a.Ast.rel;
    acc := ("attr", a.Ast.name) :: !acc;
    a
  in
  List.iter
    (fun q ->
      ignore
        (Ast.map_query ~rel:collect_rel ~attr:collect_attr
           ~const:(fun _ c -> c) q))
    log;
  List.rev !acc

let attack_names ~label ~plain ~cipher =
  let p = names_by_position plain and c = names_by_position cipher in
  if List.length p <> List.length c then invalid_arg "Harness: logs do not align";
  let tbl = Hashtbl.create 4 in
  List.iter2
    (fun (ns, pn) (_, cn) ->
      let pair = (Value.Vstring pn, Value.Vstring cn) in
      Hashtbl.replace tbl ns
        (pair :: Option.value ~default:[] (Hashtbl.find_opt tbl ns)))
    p c;
  let groups =
    Hashtbl.fold (fun ns pairs acc -> (ns, List.rev pairs) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (* names are deterministic pseudonyms under every scheme *)
  report_of_groups ~label ~class_of:(fun _ -> Dpe.Taxonomy.DET) groups

let attack_database ~label ~class_of ~plain ~cipher ~cipher_rel_of ~cipher_attr_of =
  let groups =
    List.concat_map
      (fun rel ->
        let pt = Minidb.Database.find_exn plain rel in
        let ct = Minidb.Database.find_exn cipher (cipher_rel_of rel) in
        let schema = Minidb.Table.schema pt in
        List.map
          (fun col ->
            let pv = Minidb.Table.column_values pt col in
            let cv = Minidb.Table.column_values ct (cipher_attr_of col) in
            let pairs =
              List.combine pv cv
              |> List.filter (fun (p, _) -> not (Value.is_null p))
            in
            (col, pairs))
          (Minidb.Schema.column_names schema))
      (Minidb.Database.relations plain)
  in
  (* merge same-named columns across relations (they share keys/policies) *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (col, pairs) ->
      Hashtbl.replace tbl col
        (Option.value ~default:[] (Hashtbl.find_opt tbl col) @ pairs))
    groups;
  let merged =
    Hashtbl.fold (fun col pairs acc -> (col, pairs) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  report_of_groups ~label ~class_of merged

let pp fmt r =
  Format.fprintf fmt "%s: overall recovery %d/%d = %.3f@." r.label
    r.overall.Attacks.recovered r.overall.Attacks.cells r.overall.Attacks.rate;
  List.iter
    (fun row ->
      Format.fprintf fmt "  %-14s %-8s %4d/%-4d = %.3f@." row.attr
        (Dpe.Taxonomy.to_string row.cls)
        row.outcome.Attacks.recovered row.outcome.Attacks.cells
        row.outcome.Attacks.rate)
    r.rows
