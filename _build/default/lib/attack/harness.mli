(** End-to-end attack evaluation: the query-only attack on an encrypted log
    (recovering plaintext constants) and the content attack on an encrypted
    database (recovering column values), per attribute, with the attack
    matched to each attribute's ciphertext class. *)

type row = {
  attr : string;
  cls : Dpe.Taxonomy.ppe_class;
  outcome : Attacks.outcome;
}

type report = {
  label : string;
  rows : row list;
  overall : Attacks.outcome;  (** all cells pooled *)
}

val constants_by_attr :
  Sqlir.Ast.query list -> (string * Sqlir.Ast.const) list
(** Every encrypted-constant occurrence in traversal order, keyed by the
    unqualified attribute it belongs to.  COUNT thresholds are skipped
    (they are never encrypted). *)

val attack_log :
  label:string ->
  class_of:(string -> Dpe.Taxonomy.ppe_class) ->
  plain:Sqlir.Ast.query list ->
  cipher:Sqlir.Ast.query list ->
  report
(** Query-only attack [9]: align the plaintext and encrypted logs (the
    encryption is structure-preserving, so constants correspond
    positionally), build the adversary's aux model from the plaintext
    constant distribution per attribute, and attack each attribute with
    the strongest attack for its class. *)

val names_by_position :
  Sqlir.Ast.query list -> (string * string) list
(** Every relation- and attribute-name occurrence in traversal order,
    tagged ["rel"] or ["attr"]. *)

val attack_names :
  label:string ->
  plain:Sqlir.Ast.query list ->
  cipher:Sqlir.Ast.query list ->
  report
(** The other half of the query-only attack of Example 3 [9]: recover
    {e relation and attribute names} from the encrypted log by frequency
    analysis (names are always DET under every Table I scheme).  Rows are
    the two namespaces. *)

val attack_database :
  label:string ->
  class_of:(string -> Dpe.Taxonomy.ppe_class) ->
  plain:Minidb.Database.t ->
  cipher:Minidb.Database.t ->
  cipher_rel_of:(string -> string) ->
  cipher_attr_of:(string -> string) ->
  report
(** Known-distribution attack on shared encrypted content (the DB-Content
    column of Table I). *)

val pp : Format.formatter -> report -> unit
