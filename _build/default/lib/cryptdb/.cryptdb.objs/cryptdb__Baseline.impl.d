lib/cryptdb/baseline.ml: Distance Dpe Format List Planner
