lib/cryptdb/onion.ml: Dpe List Printf
