lib/cryptdb/planner.ml: Dpe Format Hashtbl List Onion Option Printf Sqlir String
