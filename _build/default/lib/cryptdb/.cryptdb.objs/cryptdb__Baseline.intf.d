lib/cryptdb/baseline.mli: Distance Dpe Format Planner
