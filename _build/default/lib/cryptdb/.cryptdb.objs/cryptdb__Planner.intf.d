lib/cryptdb/planner.mli: Dpe Format Onion Sqlir
