lib/cryptdb/onion.mli: Dpe
