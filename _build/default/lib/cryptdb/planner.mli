(** The CryptDB adjustment loop: replay a query log and peel onion layers
    as each query demands, recording the trace. *)

type event = {
  query_index : int;
  column : string;
  action : string;  (** e.g. "Eq onion RND -> DET" *)
}

type plan = {
  columns : (string * Onion.column) list;  (** final steady state *)
  trace : event list;                      (** adjustments in replay order *)
}

val replay : Sqlir.Ast.query list -> plan
(** Columns are keyed by unqualified attribute name, matching
    {!Dpe.Log_profile}. *)

val exposed : plan -> string -> Dpe.Taxonomy.ppe_class
(** Steady-state leakage class of a column; PROB for untouched columns. *)

val pp : Format.formatter -> plan -> unit
