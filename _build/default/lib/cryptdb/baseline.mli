(** Security comparison of a KIT-DPE scheme against the CryptDB steady
    state for the same log — the paper's claim in §IV-C/§V that per-measure
    schemes "give way to higher security" than an execution-oriented system
    like CryptDB. *)

type row = {
  attr : string;
  kitdpe : Dpe.Taxonomy.ppe_class;   (** constants/content class under the scheme *)
  cryptdb : Dpe.Taxonomy.ppe_class;  (** exposed onion layer after replay *)
  advantage : int;
      (** KIT-DPE security level minus CryptDB's; positive = more secure *)
}

type comparison = {
  measure : Distance.Measure.t;
  rows : row list;
  strictly_better : int;
  equal : int;
  worse : int;
}

val compare_scheme :
  ?profile:Dpe.Log_profile.t -> Dpe.Scheme.t -> Planner.plan -> comparison
(** When [profile] is given, the KIT-DPE side reports {e effective}
    exposure: an attribute whose constants never appear in the log leaks
    nothing under a log-only measure (token, structure, access-area), so it
    counts as PROB regardless of the scheme's constant class.  Result
    distance shares database content, so there the scheme class always
    applies. *)

val pp : Format.formatter -> comparison -> unit
