type eq_layer = Eq_rnd | Eq_det | Eq_join
type ord_layer = Ord_rnd | Ord_ope | Ord_ope_join

type column = {
  name : string;
  eq : eq_layer;
  ord : ord_layer;
  add_exposed : bool;
}

let fresh name = { name; eq = Eq_rnd; ord = Ord_rnd; add_exposed = false }

let peel_eq ~cross_column c =
  let eq =
    match c.eq, cross_column with
    | Eq_join, _ | _, true -> Eq_join
    | (Eq_rnd | Eq_det), false -> Eq_det
  in
  { c with eq }

let peel_ord ~cross_column c =
  let ord =
    match c.ord, cross_column with
    | Ord_ope_join, _ | _, true -> Ord_ope_join
    | (Ord_rnd | Ord_ope), false -> Ord_ope
  in
  { c with ord }

let expose_add c = { c with add_exposed = true }

let exposed_class c =
  (* pick the lowest security level among the exposed layers *)
  let classes =
    (match c.eq with
     | Eq_rnd -> [ Dpe.Taxonomy.PROB ]
     | Eq_det -> [ Dpe.Taxonomy.DET ]
     | Eq_join -> [ Dpe.Taxonomy.JOIN ])
    @ (match c.ord with
       | Ord_rnd -> []
       | Ord_ope -> [ Dpe.Taxonomy.OPE ]
       | Ord_ope_join -> [ Dpe.Taxonomy.JOIN_OPE ])
    @ (if c.add_exposed then [ Dpe.Taxonomy.HOM ] else [])
  in
  (* ties resolve toward the more specific later entry, so an exposed HOM
     onion reports HOM rather than the equal-row PROB *)
  List.fold_left
    (fun worst cls ->
      if Dpe.Taxonomy.security_level cls <= Dpe.Taxonomy.security_level worst then cls
      else worst)
    Dpe.Taxonomy.PROB classes

let eq_layer_to_string = function
  | Eq_rnd -> "RND"
  | Eq_det -> "DET"
  | Eq_join -> "JOIN"

let ord_layer_to_string = function
  | Ord_rnd -> "RND"
  | Ord_ope -> "OPE"
  | Ord_ope_join -> "OPE-JOIN"

let to_string c =
  Printf.sprintf "%s[eq=%s ord=%s%s]" c.name (eq_layer_to_string c.eq)
    (ord_layer_to_string c.ord)
    (if c.add_exposed then " add=HOM" else "")
