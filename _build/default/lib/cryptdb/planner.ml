module Ast = Sqlir.Ast

type event = {
  query_index : int;
  column : string;
  action : string;
}

type plan = {
  columns : (string * Onion.column) list;
  trace : event list;
}

type state = {
  tbl : (string, Onion.column) Hashtbl.t;
  mutable events : event list;
}

let get st name =
  match Hashtbl.find_opt st.tbl name with
  | Some c -> c
  | None ->
    let c = Onion.fresh name in
    Hashtbl.add st.tbl name c;
    c

let set st ~qi before after reason =
  if before <> after then begin
    Hashtbl.replace st.tbl after.Onion.name after;
    st.events <-
      { query_index = qi; column = after.Onion.name; action = reason } :: st.events
  end

let key (a : Ast.attr) = a.Ast.name

let need_eq st ~qi ~cross a =
  let c = get st (key a) in
  let c' = Onion.peel_eq ~cross_column:cross c in
  set st ~qi c c'
    (Printf.sprintf "Eq onion %s -> %s"
       (Onion.eq_layer_to_string c.Onion.eq)
       (Onion.eq_layer_to_string c'.Onion.eq))

let need_ord st ~qi ~cross a =
  let c = get st (key a) in
  let c' = Onion.peel_ord ~cross_column:cross c in
  set st ~qi c c'
    (Printf.sprintf "Ord onion %s -> %s"
       (Onion.ord_layer_to_string c.Onion.ord)
       (Onion.ord_layer_to_string c'.Onion.ord))

let need_add st ~qi a =
  let c = get st (key a) in
  let c' = Onion.expose_add c in
  set st ~qi c c' "Add onion exposed (HOM)"

let rec walk_pred st ~qi p =
  match p with
  | Ast.Cmp (c, a, _) ->
    (match c with
     | Ast.Eq | Ast.Neq -> need_eq st ~qi ~cross:false a
     | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> need_ord st ~qi ~cross:false a)
  | Ast.Cmp_attrs (c, a, b) ->
    (match c with
     | Ast.Eq | Ast.Neq ->
       need_eq st ~qi ~cross:true a;
       need_eq st ~qi ~cross:true b
     | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
       need_ord st ~qi ~cross:true a;
       need_ord st ~qi ~cross:true b)
  | Ast.Between (a, _, _) -> need_ord st ~qi ~cross:false a
  | Ast.In_list (a, _) -> need_eq st ~qi ~cross:false a
  | Ast.Like (a, _) ->
    (* CryptDB's SEARCH onion degrades to DET-level word equality here *)
    need_eq st ~qi ~cross:false a
  | Ast.Is_null _ | Ast.Is_not_null _ -> ()
  | Ast.Cmp_agg (_, fn, arg, _) ->
    (match fn, arg with
     | Ast.Count, _ -> ()
     | (Ast.Sum | Ast.Avg), Some a -> need_add st ~qi a
     | (Ast.Min | Ast.Max), Some a -> need_ord st ~qi ~cross:false a
     | _, None -> ())
  | Ast.And (l, r) | Ast.Or (l, r) ->
    walk_pred st ~qi l;
    walk_pred st ~qi r
  | Ast.Not p -> walk_pred st ~qi p

let walk_query st ~qi (q : Ast.query) =
  List.iter
    (function
      | Ast.Star -> ()
      | Ast.Sel_attr _ -> ()  (* projection runs on any layer *)
      | Ast.Sel_agg (fn, arg, _) ->
        (match fn, arg with
         | Ast.Count, _ -> ()
         | (Ast.Sum | Ast.Avg), Some a -> need_add st ~qi a
         | (Ast.Min | Ast.Max), Some a -> need_ord st ~qi ~cross:false a
         | _, None -> ()))
    q.Ast.select;
  List.iter
    (fun (j : Ast.join) ->
      need_eq st ~qi ~cross:true j.Ast.jleft;
      need_eq st ~qi ~cross:true j.Ast.jright)
    q.Ast.joins;
  Option.iter (walk_pred st ~qi) q.Ast.where;
  List.iter (fun a -> need_eq st ~qi ~cross:false a) q.Ast.group_by;
  Option.iter (walk_pred st ~qi) q.Ast.having;
  List.iter (fun (a, _) -> need_ord st ~qi ~cross:false a) q.Ast.order_by

let replay log =
  let st = { tbl = Hashtbl.create 32; events = [] } in
  List.iteri (fun qi q -> walk_query st ~qi q) log;
  let columns =
    Hashtbl.fold (fun name c acc -> (name, c) :: acc) st.tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { columns; trace = List.rev st.events }

let exposed plan name =
  match List.assoc_opt name plan.columns with
  | Some c -> Onion.exposed_class c
  | None -> Dpe.Taxonomy.PROB

let pp fmt plan =
  Format.fprintf fmt "CryptDB steady state after %d adjustments:@."
    (List.length plan.trace);
  List.iter
    (fun (_, c) -> Format.fprintf fmt "  %s@." (Onion.to_string c))
    plan.columns
