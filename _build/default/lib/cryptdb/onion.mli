(** CryptDB-style onion encryption state [8].

    Each column carries up to three onions; every onion is a stack of
    layers with a semantically-secure (RND) layer outermost.  Executing a
    query that needs equality/order/aggregation {e peels} the respective
    onion down to DET/JOIN, OPE/OPE-JOIN or exposes the HOM onion — and
    peeling is irreversible, which is exactly why CryptDB's steady state is
    no more secure than the operations the whole workload ever needed. *)

type eq_layer = Eq_rnd | Eq_det | Eq_join
type ord_layer = Ord_rnd | Ord_ope | Ord_ope_join

type column = {
  name : string;
  eq : eq_layer;
  ord : ord_layer;
  add_exposed : bool;  (** HOM onion in use *)
}

val fresh : string -> column
(** Both onions at RND, HOM unused — the state before any query ran. *)

val peel_eq : cross_column:bool -> column -> column
val peel_ord : cross_column:bool -> column -> column
val expose_add : column -> column
(** All three are monotone: they never re-wrap a peeled layer. *)

val exposed_class : column -> Dpe.Taxonomy.ppe_class
(** The weakest (most leaking) class visible across the column's onions —
    what a passive adversary gets to attack. *)

val eq_layer_to_string : eq_layer -> string
val ord_layer_to_string : ord_layer -> string
val to_string : column -> string
