type row = {
  attr : string;
  kitdpe : Dpe.Taxonomy.ppe_class;
  cryptdb : Dpe.Taxonomy.ppe_class;
  advantage : int;
}

type comparison = {
  measure : Distance.Measure.t;
  rows : row list;
  strictly_better : int;
  equal : int;
  worse : int;
}

let compare_scheme ?profile (scheme : Dpe.Scheme.t) (plan : Planner.plan) =
  let attrs = List.map fst plan.Planner.columns in
  let shares_db_content =
    Distance.Measure.needs_db_content scheme.Dpe.Scheme.measure
  in
  let has_encrypted_material attr =
    match profile with
    | None -> true
    | Some p ->
      shares_db_content
      ||
      let u = Dpe.Log_profile.usage_of p attr in
      u.Dpe.Log_profile.int_consts || u.Dpe.Log_profile.float_consts
      || u.Dpe.Log_profile.string_consts
  in
  let rows =
    List.map
      (fun attr ->
        let kitdpe =
          if has_encrypted_material attr then
            Dpe.Scheme.ppe_of_const_class (Dpe.Scheme.class_for_attr scheme attr)
          else Dpe.Taxonomy.PROB
        in
        let cryptdb = Planner.exposed plan attr in
        { attr; kitdpe; cryptdb;
          advantage =
            Dpe.Taxonomy.security_level kitdpe - Dpe.Taxonomy.security_level cryptdb })
      attrs
  in
  { measure = scheme.Dpe.Scheme.measure;
    rows;
    strictly_better = List.length (List.filter (fun r -> r.advantage > 0) rows);
    equal = List.length (List.filter (fun r -> r.advantage = 0) rows);
    worse = List.length (List.filter (fun r -> r.advantage < 0) rows) }

let pp fmt c =
  Format.fprintf fmt
    "measure %s vs CryptDB: better on %d attribute(s), equal on %d, worse on %d@."
    (Distance.Measure.to_string c.measure) c.strictly_better c.equal c.worse;
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-14s KIT-DPE=%-8s CryptDB=%-8s %s@." r.attr
        (Dpe.Taxonomy.to_string r.kitdpe)
        (Dpe.Taxonomy.to_string r.cryptdb)
        (if r.advantage > 0 then "(+)" else if r.advantage < 0 then "(-)" else ""))
    c.rows
