type group = string

let det_key ~master group = Det.key_of_master ~master ~purpose:("join/" ^ group)

let ope_key ~master group params =
  Ope.create ~master ~purpose:("join-ope/" ^ group) params

let canonical_group columns =
  List.sort_uniq String.compare columns |> String.concat "|"
