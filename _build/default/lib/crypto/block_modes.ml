let incr_counter block =
  let b = Bytes.of_string block in
  let rec bump i =
    if i >= 8 then begin
      let v = (Char.code (Bytes.get b i) + 1) land 0xff in
      Bytes.set b i (Char.chr v);
      if v = 0 then bump (i - 1)
    end
  in
  bump 15;
  Bytes.to_string b

let ctr_transform key ~iv data =
  if String.length iv <> 16 then invalid_arg "Block_modes.ctr_transform: iv";
  let n = String.length data in
  let out = Bytes.create n in
  let counter = ref iv in
  let i = ref 0 in
  while !i < n do
    let ks = Aes128.encrypt_block key !counter in
    let len = min 16 (n - !i) in
    for j = 0 to len - 1 do
      Bytes.set out (!i + j)
        (Char.chr (Char.code data.[!i + j] lxor Char.code ks.[j]))
    done;
    counter := incr_counter !counter;
    i := !i + 16
  done;
  Bytes.to_string out

let map_blocks f key data =
  let n = String.length data in
  if n mod 16 <> 0 then invalid_arg "Block_modes: data not block-aligned";
  let buf = Buffer.create n in
  for i = 0 to (n / 16) - 1 do
    Buffer.add_string buf (f key (String.sub data (i * 16) 16))
  done;
  Buffer.contents buf

let ecb_encrypt key data = map_blocks Aes128.encrypt_block key data
let ecb_decrypt key data = map_blocks Aes128.decrypt_block key data
