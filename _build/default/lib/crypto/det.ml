type key = { siv : string; enc : Aes128.key }

let key_of_master ~master ~purpose =
  let raw = Hmac.derive ~master ~purpose:("det/" ^ purpose) 48 in
  { siv = String.sub raw 0 32; enc = Aes128.expand (String.sub raw 32 16) }

let siv_of k msg = String.sub (Hmac.hmac_sha256 ~key:k.siv msg) 0 16

let encrypt k msg =
  let iv = siv_of k msg in
  iv ^ Block_modes.ctr_transform k.enc ~iv msg

let decrypt k ct =
  let n = String.length ct in
  if n < 16 then None
  else begin
    let iv = String.sub ct 0 16 in
    let msg = Block_modes.ctr_transform k.enc ~iv (String.sub ct 16 (n - 16)) in
    if String.equal (siv_of k msg) iv then Some msg else None
  end

let token = siv_of
