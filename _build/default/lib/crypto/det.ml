type key = { siv : string; enc : Aes128.key }

let key_of_master ~master ~purpose =
  let raw = Hmac.derive ~master ~purpose:("det/" ^ purpose) 48 in
  { siv = String.sub raw 0 32; enc = Aes128.expand (String.sub raw 32 16) }

let siv_of k msg = String.sub (Hmac.hmac_sha256 ~key:k.siv msg) 0 16

let encrypt k msg =
  let iv = siv_of k msg in
  iv ^ Block_modes.ctr_transform k.enc ~iv msg

let decrypt k ct =
  let n = String.length ct in
  if n < 16 then None
  else begin
    let iv = String.sub ct 0 16 in
    let msg = Block_modes.ctr_transform k.enc ~iv (String.sub ct 16 (n - 16)) in
    if String.equal (siv_of k msg) iv then Some msg else None
  end

let token = siv_of

(* optional plaintext -> ciphertext memo for bulk encryption: DET is
   deterministic, so a hit returns exactly what [encrypt] would, and the
   mutex makes one cache shareable by all domains of a pool *)
type cache = {
  tbl : (string, string) Hashtbl.t;
  lock : Mutex.t;
  bound : int;
}

let make_cache ?(bound = 1 lsl 16) () =
  { tbl = Hashtbl.create 256; lock = Mutex.create (); bound = max 1 bound }

let encrypt_cached cache k msg =
  Mutex.lock cache.lock;
  let hit = Hashtbl.find_opt cache.tbl msg in
  Mutex.unlock cache.lock;
  match hit with
  | Some ct -> ct
  | None ->
    let ct = encrypt k msg in
    Mutex.lock cache.lock;
    if Hashtbl.length cache.tbl >= cache.bound then Hashtbl.reset cache.tbl;
    Hashtbl.replace cache.tbl msg ct;
    Mutex.unlock cache.lock;
    ct
