lib/crypto/ope_hgd.ml: Array Char Float Hmac List String
