lib/crypto/join_enc.ml: Det List Ope String
