lib/crypto/det.mli:
