lib/crypto/hex.ml: Bytes Char Sha256 String
