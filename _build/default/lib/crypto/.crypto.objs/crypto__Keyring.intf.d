lib/crypto/keyring.mli: Det Drbg Join_enc Ope Prob
