lib/crypto/prob.mli: Drbg
