lib/crypto/join_enc.mli: Det Ope
