lib/crypto/block_modes.ml: Aes128 Buffer Bytes Char String
