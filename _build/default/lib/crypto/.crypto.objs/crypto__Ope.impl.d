lib/crypto/ope.ml: Char Hmac String
