lib/crypto/ope.ml: Char Hashtbl Hmac Mutex String
