lib/crypto/paillier.ml: Bignum Drbg
