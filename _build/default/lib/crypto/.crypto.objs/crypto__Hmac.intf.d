lib/crypto/hmac.mli:
