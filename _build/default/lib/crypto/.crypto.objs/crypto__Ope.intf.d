lib/crypto/ope.mli:
