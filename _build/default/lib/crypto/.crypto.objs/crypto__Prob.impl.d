lib/crypto/prob.ml: Aes128 Block_modes Char Drbg Hmac String
