lib/crypto/keyring.ml: Det Drbg Hmac Join_enc Ope Prob Sha256
