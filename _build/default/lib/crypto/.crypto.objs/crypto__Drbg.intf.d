lib/crypto/drbg.mli:
