lib/crypto/block_modes.mli: Aes128
