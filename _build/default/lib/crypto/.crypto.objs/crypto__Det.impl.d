lib/crypto/det.ml: Aes128 Block_modes Hashtbl Hmac Mutex String
