lib/crypto/det.ml: Aes128 Block_modes Hmac String
