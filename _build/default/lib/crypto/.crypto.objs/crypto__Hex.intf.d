lib/crypto/hex.mli:
