lib/crypto/ope_hgd.mli:
