lib/crypto/paillier.mli: Bignum Drbg
