(* AES-128.  GF(2^8) arithmetic modulo x^8 + x^4 + x^3 + x + 1 (0x11b). *)

let xtime b =
  let b = b lsl 1 in
  if b land 0x100 <> 0 then (b lxor 0x11b) land 0xff else b

let gmul a b =
  let acc = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 = 1 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc

(* multiplicative inverse by exponentiation: a^254 = a^-1 in GF(2^8) *)
let ginv a =
  if a = 0 then 0
  else begin
    let rec go acc b e =
      if e = 0 then acc
      else go (if e land 1 = 1 then gmul acc b else acc) (gmul b b) (e lsr 1)
    in
    go 1 a 254
  end

let sbox =
  Array.init 256 (fun i ->
      let b = ginv i in
      let rot b n = ((b lsl n) lor (b lsr (8 - n))) land 0xff in
      b lxor rot b 1 lxor rot b 2 lxor rot b 3 lxor rot b 4 lxor 0x63)

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i s -> t.(s) <- i) sbox;
  t

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

type key = int array array
(* 11 round keys, each 16 bytes *)

let expand k =
  if String.length k <> 16 then invalid_arg "Aes128.expand: need 16-byte key";
  (* words w.(0..43), each 4 bytes *)
  let w = Array.make 44 [| 0; 0; 0; 0 |] in
  for i = 0 to 3 do
    w.(i) <- Array.init 4 (fun j -> Char.code k.[4 * i + j])
  done;
  for i = 4 to 43 do
    let tmp = Array.copy w.(i - 1) in
    let tmp =
      if i mod 4 = 0 then begin
        (* rotword + subword + rcon *)
        let r = [| tmp.(1); tmp.(2); tmp.(3); tmp.(0) |] in
        let r = Array.map (fun b -> sbox.(b)) r in
        r.(0) <- r.(0) lxor rcon.(i / 4 - 1);
        r
      end
      else tmp
    in
    w.(i) <- Array.init 4 (fun j -> w.(i - 4).(j) lxor tmp.(j))
  done;
  Array.init 11 (fun r ->
      Array.init 16 (fun j -> w.(4 * r + j / 4).(j mod 4)))

let add_round_key state rk =
  for i = 0 to 15 do state.(i) <- state.(i) lxor rk.(i) done

(* state layout: column-major as in FIPS 197 — state.(4*c + r) is row r, col c *)
let shift_rows state =
  let tmp = Array.copy state in
  for r = 1 to 3 do
    for c = 0 to 3 do
      state.(4 * c + r) <- tmp.(4 * ((c + r) mod 4) + r)
    done
  done

let inv_shift_rows state =
  let tmp = Array.copy state in
  for r = 1 to 3 do
    for c = 0 to 3 do
      state.(4 * ((c + r) mod 4) + r) <- tmp.(4 * c + r)
    done
  done

let mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c) and a1 = state.(4 * c + 1)
    and a2 = state.(4 * c + 2) and a3 = state.(4 * c + 3) in
    state.(4 * c) <- gmul 2 a0 lxor gmul 3 a1 lxor a2 lxor a3;
    state.(4 * c + 1) <- a0 lxor gmul 2 a1 lxor gmul 3 a2 lxor a3;
    state.(4 * c + 2) <- a0 lxor a1 lxor gmul 2 a2 lxor gmul 3 a3;
    state.(4 * c + 3) <- gmul 3 a0 lxor a1 lxor a2 lxor gmul 2 a3
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c) and a1 = state.(4 * c + 1)
    and a2 = state.(4 * c + 2) and a3 = state.(4 * c + 3) in
    state.(4 * c) <- gmul 14 a0 lxor gmul 11 a1 lxor gmul 13 a2 lxor gmul 9 a3;
    state.(4 * c + 1) <- gmul 9 a0 lxor gmul 14 a1 lxor gmul 11 a2 lxor gmul 13 a3;
    state.(4 * c + 2) <- gmul 13 a0 lxor gmul 9 a1 lxor gmul 14 a2 lxor gmul 11 a3;
    state.(4 * c + 3) <- gmul 11 a0 lxor gmul 13 a1 lxor gmul 9 a2 lxor gmul 14 a3
  done

let sub_bytes state = Array.iteri (fun i b -> state.(i) <- sbox.(b)) state
let inv_sub_bytes state = Array.iteri (fun i b -> state.(i) <- inv_sbox.(b)) state

let encrypt_block rk block =
  if String.length block <> 16 then invalid_arg "Aes128.encrypt_block";
  let state = Array.init 16 (fun i -> Char.code block.[i]) in
  add_round_key state rk.(0);
  for round = 1 to 9 do
    sub_bytes state;
    shift_rows state;
    mix_columns state;
    add_round_key state rk.(round)
  done;
  sub_bytes state;
  shift_rows state;
  add_round_key state rk.(10);
  String.init 16 (fun i -> Char.chr state.(i))

let decrypt_block rk block =
  if String.length block <> 16 then invalid_arg "Aes128.decrypt_block";
  let state = Array.init 16 (fun i -> Char.code block.[i]) in
  add_round_key state rk.(10);
  inv_shift_rows state;
  inv_sub_bytes state;
  for round = 9 downto 1 do
    add_round_key state rk.(round);
    inv_mix_columns state;
    inv_shift_rows state;
    inv_sub_bytes state
  done;
  add_round_key state rk.(0);
  String.init 16 (fun i -> Char.chr state.(i))
