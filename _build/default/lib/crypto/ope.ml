type params = { plain_bits : int; cipher_bits : int }

type key = { prf : string; p : params }

let default_params = { plain_bits = 32; cipher_bits = 48 }

let create ~master ~purpose p =
  if p.plain_bits <= 0 || p.plain_bits >= p.cipher_bits || p.cipher_bits > 55
  then invalid_arg "Ope.create: invalid params";
  { prf = Hmac.derive ~master ~purpose:("ope/" ^ purpose) 32; p }

let params k = (k.p.plain_bits, k.p.cipher_bits)
let max_plain k = (1 lsl k.p.plain_bits) - 1

let encode_int v =
  String.init 8 (fun i -> Char.chr ((v lsr (8 * (7 - i))) land 0xff))

(* deterministic uniform draw in [0, n) seeded by the node coordinates;
   n < 2^56, the 62-bit HMAC output makes the modulo bias negligible *)
let draw key tag a b n =
  let h = Hmac.hmac_sha256 ~key (tag ^ encode_int a ^ encode_int b) in
  let v = ref 0 in
  for i = 0 to 7 do v := ((!v lsl 8) lor Char.code h.[i]) land max_int done;
  !v mod n

(* Split point for the node covering plaintexts [plo..phi] and ciphertexts
   [clo..chi]: cs is the highest ciphertext allocated to the left half.
   Left half holds plaintexts [plo..pm] and needs pm-plo+1 values; right
   half holds [pm+1..phi] and needs phi-pm values. *)
let node_split k plo phi clo chi =
  let pm = plo + (phi - plo) / 2 in
  let lo = clo + (pm - plo) in
  let hi = chi - (phi - pm) in
  (* the node is identified by (plo, phi): the ciphertext range is a
     function of the path from the root, so it need not enter the seed *)
  let cs = lo + draw k.prf "node" plo phi (hi - lo + 1) in
  (pm, cs)

let leaf_value k m clo chi =
  clo + draw k.prf "leaf" m m (chi - clo + 1)

let encrypt k m =
  if m < 0 || m > max_plain k then invalid_arg "Ope.encrypt: out of domain";
  let rec go plo phi clo chi =
    if plo = phi then leaf_value k plo clo chi
    else begin
      let pm, cs = node_split k plo phi clo chi in
      if m <= pm then go plo pm clo cs else go (pm + 1) phi (cs + 1) chi
    end
  in
  go 0 (max_plain k) 0 ((1 lsl k.p.cipher_bits) - 1)

let decrypt k c =
  if c < 0 || c >= 1 lsl k.p.cipher_bits then None
  else begin
    let rec go plo phi clo chi =
      if plo = phi then
        if leaf_value k plo clo chi = c then Some plo else None
      else begin
        let pm, cs = node_split k plo phi clo chi in
        if c <= cs then go plo pm clo cs else go (pm + 1) phi (cs + 1) chi
      end
    in
    go 0 (max_plain k) 0 ((1 lsl k.p.cipher_bits) - 1)
  end
