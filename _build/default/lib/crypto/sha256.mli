(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used as the basis for {!Hmac}, the {!Drbg} deterministic random byte
    generator and every key-derivation step in the library. *)

val digest : string -> string
(** [digest msg] is the 32-byte SHA-256 digest of [msg]. *)

val hex : string -> string
(** [hex msg] is the lowercase hex encoding of [digest msg]. *)

val to_hex : string -> string
(** Hex-encode an arbitrary byte string. *)
