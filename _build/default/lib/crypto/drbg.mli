(** Deterministic random byte generator (HMAC-DRBG, simplified from
    NIST SP 800-90A).

    All randomness in the library flows through this module so that every
    experiment is reproducible from a seed.  The generator is
    cryptographically strong as long as HMAC-SHA256 is a PRF. *)

type t

val create : seed:string -> t
(** Instantiate from arbitrary seed material. *)

val generate : t -> int -> string
(** [generate t n] produces the next [n] pseudo-random bytes. *)

val bytes_fn : t -> int -> string
(** [bytes_fn t] is [generate t], shaped for {!Bignum.Bignat.random_below}. *)

val uniform_int : t -> int -> int
(** [uniform_int t bound] is uniform in [[0, bound)] via rejection sampling.
    @raise Invalid_argument if [bound <= 0]. *)

val uniform_float : t -> float
(** Uniform in [[0, 1)] with 53 bits of precision. *)

val split : t -> string -> t
(** [split t label] derives an independent generator; used to hand each
    experiment component its own stream without coupling draw orders. *)
