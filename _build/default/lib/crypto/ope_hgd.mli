(** Order-preserving encryption with hypergeometric range splitting — the
    Boldyreva-O'Neill-style reference construction, implemented as an
    ablation counterpart to {!Ope} (which splits ranges uniformly; see the
    substitution note in DESIGN.md).

    The recursion is the classical lazy sampling of a random order-
    preserving injection: binary-search over the {e ciphertext} range, and
    at each ciphertext midpoint [y] draw how many plaintexts fall at or
    below [y] from the hypergeometric distribution
    HGD(draws = y-clo+1, whites = |plain range|, total = |cipher range|),
    with HMAC-SHA256 supplying the sampling coins.  The hypergeometric
    inverse-CDF is evaluated in log-space with a from-scratch Lanczos
    log-gamma.

    Intended for moderate domains (the sampler walks O(√variance) terms per
    level); [plain_bits <= 20] keeps encryption in the microsecond-to-
    millisecond range.  The interface mirrors {!Ope}. *)

type params = { plain_bits : int; cipher_bits : int }
(** Requires [0 < plain_bits <= 20 < cipher_bits <= 50]. *)

type key

val create : master:string -> purpose:string -> params -> key
val params : key -> int * int
val max_plain : key -> int

val encrypt : key -> int -> int
(** @raise Invalid_argument outside [[0, 2^plain_bits)]. *)

val decrypt : key -> int -> int option

val lgamma : float -> float
(** Log-gamma (Lanczos, |error| < 1e-10 for x >= 0.5) — exposed for tests. *)
