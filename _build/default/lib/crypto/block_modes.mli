(** Block-cipher modes of operation for {!Aes128}. *)

val ctr_transform : Aes128.key -> iv:string -> string -> string
(** [ctr_transform k ~iv data] encrypts or decrypts [data] (the operation is
    its own inverse) in counter mode.  [iv] is a 16-byte initial counter
    block; successive blocks increment its low 64 bits big-endian. *)

val ecb_encrypt : Aes128.key -> string -> string
(** Encrypt a multiple-of-16-byte string block by block.  Exposed only for
    tests and for the attack harness's "worst baseline" configuration —
    never used by the DPE schemes themselves. *)

val ecb_decrypt : Aes128.key -> string -> string
