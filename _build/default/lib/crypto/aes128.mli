(** AES-128 block cipher (FIPS 197), implemented from scratch.

    The S-box is computed from the GF(2^8) inverse and affine transform at
    module initialization rather than transcribed, and is validated against
    FIPS 197 test vectors in the test suite.  AES is the paper's reference
    instance for probabilistic encryption ("randomized AES" [12]); it is used
    here through {!Block_modes} by {!Prob} and {!Det}. *)

type key
(** Expanded key schedule. *)

val expand : string -> key
(** [expand k] expands a 16-byte key. @raise Invalid_argument otherwise. *)

val encrypt_block : key -> string -> string
(** [encrypt_block k block] encrypts one 16-byte block. *)

val decrypt_block : key -> string -> string
(** Inverse of {!encrypt_block}. *)
