let encode = Sha256.to_hex

let nibble c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else begin
    let buf = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Some (Bytes.to_string buf)
      else
        match nibble s.[i], nibble s.[i + 1] with
        | Some hi, Some lo ->
          Bytes.set buf (i / 2) (Char.chr ((hi lsl 4) lor lo));
          go (i + 2)
        | _ -> None
    in
    go 0
  end
