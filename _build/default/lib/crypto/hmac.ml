let block_size = 64

let hmac_sha256 ~key msg =
  let key =
    if String.length key > block_size then Sha256.digest key else key
  in
  let key = key ^ String.make (block_size - String.length key) '\000' in
  let xor_pad byte = String.map (fun c -> Char.chr (Char.code c lxor byte)) key in
  let ipad = xor_pad 0x36 and opad = xor_pad 0x5c in
  Sha256.digest (opad ^ Sha256.digest (ipad ^ msg))

let hkdf_extract ?(salt = "") ikm = hmac_sha256 ~key:salt ikm

let hkdf_expand ~prk ~info len =
  if len > 255 * 32 then invalid_arg "Hmac.hkdf_expand: too long";
  let buf = Buffer.create len in
  let t = ref "" in
  let i = ref 1 in
  while Buffer.length buf < len do
    t := hmac_sha256 ~key:prk (!t ^ info ^ String.make 1 (Char.chr !i));
    Buffer.add_string buf !t;
    incr i
  done;
  String.sub (Buffer.contents buf) 0 len

let derive ~master ~purpose len =
  hkdf_expand ~prk:(hkdf_extract master) ~info:purpose len
