(** HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).

    HMAC is the pseudo-random function underlying every keyed construction
    in this library: deterministic encryption tags, OPE range sampling, the
    DRBG, and key derivation. *)

val hmac_sha256 : key:string -> string -> string
(** [hmac_sha256 ~key msg] is the 32-byte HMAC-SHA256 tag. *)

val hkdf_extract : ?salt:string -> string -> string
(** [hkdf_extract ?salt ikm] is the 32-byte pseudorandom key. *)

val hkdf_expand : prk:string -> info:string -> int -> string
(** [hkdf_expand ~prk ~info len] derives [len] bytes ([len <= 255 * 32]). *)

val derive : master:string -> purpose:string -> int -> string
(** [derive ~master ~purpose len] is a convenience for
    [hkdf_expand ~prk:(hkdf_extract master) ~info:purpose len]; distinct
    [purpose] strings yield independent keys. *)
