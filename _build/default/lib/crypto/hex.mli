(** Lowercase hex encoding, used to embed ciphertexts in SQL text. *)

val encode : string -> string
val decode : string -> string option
(** [None] on odd length or non-hex characters. *)
