(** Join-preserving encryption (the paper's JOIN / JOIN-OPE classes [8]).

    JOIN is "a special usage mode of a DET or OPE scheme" (§II): columns in
    the same join-equivalence class share one key, so equality (or order)
    comparisons — and therefore equi-joins — work across encrypted columns.
    The key is derived from the {e group} name instead of the column name. *)

type group = string
(** Canonical name of a join-equivalence class of columns. *)

val det_key : master:string -> group -> Det.key
(** Shared deterministic key for every column in [group] (JOIN mode). *)

val ope_key : master:string -> group -> Ope.params -> Ope.key
(** Shared order-preserving key for every column in [group] (JOIN-OPE). *)

val canonical_group : string list -> group
(** Canonical group name for a set of joined columns: the sorted,
    deduplicated column names joined with ["|"], so any subset of a join
    class resolves to the same key. *)
