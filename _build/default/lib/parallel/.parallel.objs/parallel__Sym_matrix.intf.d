lib/parallel/sym_matrix.mli: Pool
