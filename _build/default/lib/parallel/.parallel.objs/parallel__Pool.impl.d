lib/parallel/pool.ml: Array Condition Domain List Mutex Queue String Sys
