lib/parallel/sym_matrix.ml: Array Pool
