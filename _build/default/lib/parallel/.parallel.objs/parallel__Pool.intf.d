lib/parallel/pool.mli:
