let par_threshold = 64

let build_seq n d =
  let m = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    let row = m.(i) in
    for j = i + 1 to n - 1 do
      let v = d i j in
      row.(j) <- v;
      m.(j).(i) <- v
    done
  done;
  m

let build ?pool n d =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  if n < par_threshold || Pool.size pool <= 1 then build_seq n d
  else begin
    let m = Array.make_matrix n n 0.0 in
    (* Strided rows balance the triangular row costs.  Lanes write
       disjoint cells: row [i] owns [m.(i).(j)] for [j > i] plus the
       mirror cells [m.(j).(i)], i.e. column [i] below the diagonal. *)
    Pool.for_range pool n (fun i ->
        let row = m.(i) in
        for j = i + 1 to n - 1 do
          let v = d i j in
          row.(j) <- v;
          m.(j).(i) <- v
        done);
    m
  end
