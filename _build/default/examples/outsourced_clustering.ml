(* Outsourced clustering of a SkyServer-style exploration log (the paper's
   motivating scenario): the data owner encrypts the log under the
   query-structure DPE scheme; the service provider clusters user sessions
   by query structure without ever seeing plaintext; the clusterings are
   provably identical.

   Run with:  dune exec examples/outsourced_clustering.exe *)

module M = Distance.Measure

let () =
  (* ----- data owner side ----- *)
  let params =
    { Workload.Gen_query.n = 60; templates = 4; seed = "icde-demo";
      caps = Workload.Gen_query.caps_full }
  in
  let labelled = Workload.Gen_query.skyserver_log_labelled params in
  let truth = Array.of_list (List.map fst labelled) in
  let log = List.map snd labelled in
  Format.printf "owner: generated %d queries from %d user-interest templates@."
    (List.length log) 4;

  let profile = Dpe.Log_profile.of_log log in
  let scheme = Dpe.Selector.select M.Structure profile in
  let keyring = Crypto.Keyring.of_passphrase "owner-master-secret" in
  let enc = Dpe.Encryptor.create keyring scheme in
  let cipher_log = Dpe.Encryptor.encrypt_log enc log in
  Format.printf "owner: encrypted log under the %s scheme (EncConst = %s)@.@."
    (M.to_string M.Structure) (Dpe.Scheme.const_summary scheme);

  (* ----- service provider side: ciphertexts only ----- *)
  let dc = Dpe.Verdict.distance_matrix M.default_ctx M.Structure cipher_log in
  let k = 4 in
  let provider_clusters = Mining.Hier.cut_k k dc in
  let provider_kmedoids =
    Mining.Kmedoids.run { Mining.Kmedoids.k; max_iter = 50 } dc
  in
  let provider_outliers = Mining.Outlier.run { Mining.Outlier.p = 0.97; d = 0.85 } dc in
  Format.printf "provider: clustered %d encrypted queries (complete link, k=%d)@."
    (List.length cipher_log) k;

  (* ----- verification: rerun on plaintext and compare ----- *)
  let dp = Dpe.Verdict.distance_matrix M.default_ctx M.Structure log in
  let owner_clusters = Mining.Hier.cut_k k dp in
  let owner_kmedoids = Mining.Kmedoids.run { Mining.Kmedoids.k; max_iter = 50 } dp in
  let owner_outliers = Mining.Outlier.run { Mining.Outlier.p = 0.97; d = 0.85 } dp in

  Format.printf "verify: max |d_cipher - d_plain| = %g@."
    (Mining.Dist_matrix.max_abs_diff dp dc);
  Format.printf "verify: complete-link partitions identical: %b@."
    (Mining.Labeling.same_partition owner_clusters provider_clusters);
  Format.printf "verify: k-medoids partitions identical:     %b@."
    (Mining.Labeling.same_partition owner_kmedoids provider_kmedoids);
  Format.printf "verify: outlier sets identical:             %b@.@."
    (owner_outliers = provider_outliers);

  (* how well does structure clustering recover the planted templates? *)
  Format.printf "cluster quality vs planted templates: ARI=%.3f purity=%.3f@.@."
    (Mining.Labeling.adjusted_rand_index truth provider_clusters)
    (Mining.Labeling.purity ~truth provider_clusters);

  (* show one decrypted representative per provider cluster *)
  let shown = Hashtbl.create 8 in
  List.iteri
    (fun i cq ->
      let c = provider_clusters.(i) in
      if not (Hashtbl.mem shown c) then begin
        Hashtbl.add shown c ();
        match Dpe.Encryptor.decrypt_query enc cq with
        | Ok q ->
          Format.printf "cluster %d representative: %s@." c (Sqlir.Printer.to_string q)
        | Error e -> Format.printf "cluster %d: decrypt error %s@." c e
      end)
    cipher_log
