(* The complete operational life cycle, file formats included:

     1. owner generates / loads a query log and database,
        normalizes the log, derives the scheme, encrypts everything;
     2. artifacts go to disk exactly as they would be shipped
        (log as SQL text, database as CSV);
     3. the provider loads the ciphertext artifacts and mines them,
        padded with decoys it cannot distinguish from real traffic;
     4. the owner strips the decoys, verifies the results against a
        plaintext run, and finally rotates the master key.

   Run with:  dune exec examples/full_pipeline.exe *)

module M = Distance.Measure

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let () =
  (* ----- 1: owner side ----- *)
  let log =
    Workload.Gen_query.skyserver_log
      { Workload.Gen_query.n = 30; templates = 3; seed = "pipeline";
        caps = Workload.Gen_query.caps_for_measure M.Result }
    |> List.map Sqlir.Normalizer.normalize
  in
  let db = Workload.Gen_db.skyserver ~seed:"pipeline" ~rows:100 in
  let profile = Dpe.Log_profile.of_log log in
  let scheme = Dpe.Selector.select M.Result profile in
  let keyring = Crypto.Keyring.of_passphrase "pipeline-secret-v1" in
  let enc = Dpe.Encryptor.create keyring scheme in

  (* pad with decoys BEFORE encryption so the provider cannot tell *)
  let plan =
    Dpe.Decoys.inject ~seed:"pipeline" ~ratio:0.5 Workload.Gen_db.skyserver_info log
  in
  let cipher_log = Dpe.Encryptor.encrypt_log enc plan.Dpe.Decoys.log in
  let cipher_db = Dpe.Db_encryptor.encrypt_database enc db in

  (* ----- 2: ship to disk ----- *)
  let log_path = tmp "pipeline_cipher_log.sql" in
  let db_dir = tmp "pipeline_cipher_db" in
  (match Workload.Log_io.save log_path cipher_log with
   | Ok () -> ()
   | Error e -> failwith e);
  (match Minidb.Csvio.write_database ~dir:db_dir cipher_db with
   | Ok files ->
     Format.printf "owner: shipped %s (%d queries incl. decoys) and %d CSVs to %s@."
       log_path (List.length cipher_log) (List.length files) db_dir
   | Error e -> failwith e);

  (* ----- 3: provider side (ciphertext only) ----- *)
  let provider_log =
    match Workload.Log_io.load log_path with Ok l -> l | Error e -> failwith e
  in
  let provider_db =
    match Minidb.Csvio.read_database ~dir:db_dir with
    | Ok d -> d
    | Error e -> failwith e
  in
  let dm = M.matrix (M.ctx_with_db provider_db) M.Result provider_log in
  let labels = Mining.Hier.cut_k 3 dm in
  let outliers = Mining.Outlier.run { Mining.Outlier.p = 0.95; d = 0.9 } dm in
  Format.printf "provider: clustered %d encrypted queries over %d encrypted rows@."
    (List.length provider_log) (Minidb.Database.total_rows provider_db);

  (* ----- 4: owner verifies ----- *)
  let real_labels = Dpe.Decoys.strip plan labels in
  let real_outliers = Dpe.Decoys.strip plan outliers in
  let plain_dm = M.matrix (M.ctx_with_db db) M.Result log in
  let expect_labels =
    (* the provider clustered the PADDED matrix; reproduce that plaintext-
       side before stripping, to compare apples to apples *)
    let padded_plain = M.matrix (M.ctx_with_db db) M.Result plan.Dpe.Decoys.log in
    Dpe.Decoys.strip plan (Mining.Hier.cut_k 3 padded_plain)
  in
  Format.printf "owner: provider clustering matches plaintext run: %b@."
    (Mining.Labeling.same_partition real_labels expect_labels);
  Format.printf "owner: %d real outliers flagged@."
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 real_outliers);
  ignore plain_dm;

  (* ----- 5: key rotation ----- *)
  let new_keyring = Crypto.Keyring.of_passphrase "pipeline-secret-v2" in
  let new_enc = Dpe.Encryptor.create new_keyring scheme in
  (match Dpe.Encryptor.rotate_log ~old_enc:enc ~new_enc cipher_log with
   | Ok rotated ->
     let d_old = M.matrix M.default_ctx M.Token cipher_log in
     let d_new = M.matrix M.default_ctx M.Token rotated in
     Format.printf "owner: rotated master key; token distances drift by %g@."
       (Mining.Dist_matrix.max_abs_diff d_old d_new)
   | Error e -> Format.printf "rotation failed: %s@." e);

  (* tidy up *)
  Sys.remove log_path;
  Array.iter (fun f -> Sys.remove (Filename.concat db_dir f)) (Sys.readdir db_dir);
  Sys.rmdir db_dir;
  Format.printf "done.@."
