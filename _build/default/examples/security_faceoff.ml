(* Security face-off: KIT-DPE per-measure schemes versus the CryptDB onion
   steady state for the same log (§IV-C / §V of the paper), backed by
   measured attack-recovery rates.

   Run with:  dune exec examples/security_faceoff.exe *)

module M = Distance.Measure

let () =
  let log =
    Workload.Gen_query.skyserver_log
      { Workload.Gen_query.n = 60; templates = 5; seed = "faceoff";
        caps = Workload.Gen_query.caps_full }
  in
  let profile = Dpe.Log_profile.of_log log in

  (* CryptDB executing this log peels its onions query by query *)
  let plan = Cryptdb.Planner.replay log in
  Format.printf "%a@." Cryptdb.Planner.pp plan;
  let events = plan.Cryptdb.Planner.trace in
  Format.printf "first onion adjustments:@.";
  List.iteri
    (fun i e ->
      if i < 5 then
        Format.printf "  query %2d peels %-12s %s@." e.Cryptdb.Planner.query_index
          e.Cryptdb.Planner.column e.Cryptdb.Planner.action)
    events;
  Format.printf "@.";

  (* static comparison per measure *)
  List.iter
    (fun m ->
      let scheme = Dpe.Selector.select m profile in
      let cmp = Cryptdb.Baseline.compare_scheme ~profile scheme plan in
      Format.printf "%a@." Cryptdb.Baseline.pp cmp)
    M.all;

  (* measured: query-only attack on the encrypted log per scheme *)
  let keyring = Crypto.Keyring.of_passphrase "faceoff" in
  Format.printf "query-only attack on constants (recovery rate, lower = better):@.";
  List.iter
    (fun m ->
      let scheme = Dpe.Selector.select m profile in
      let enc = Dpe.Encryptor.create keyring scheme in
      let cipher = Dpe.Encryptor.encrypt_log enc log in
      let class_of a =
        Dpe.Scheme.ppe_of_const_class (Dpe.Scheme.class_for_attr scheme a)
      in
      let r = Attack.Harness.attack_log ~label:(M.to_string m) ~class_of
          ~plain:log ~cipher in
      Format.printf "  %-12s %.3f@." (M.to_string m)
        r.Attack.Harness.overall.Attack.Attacks.rate)
    M.all;

  (* and what an attacker gets against CryptDB's steady state: every
     constant sits at the exposed onion layer *)
  let result_scheme = Dpe.Selector.select M.Result profile in
  let enc = Dpe.Encryptor.create keyring result_scheme in
  let cipher = Dpe.Encryptor.encrypt_log enc log in
  let cryptdb_class a = Cryptdb.Planner.exposed plan a in
  (match
     Attack.Harness.attack_log ~label:"cryptdb" ~class_of:cryptdb_class
       ~plain:log ~cipher
   with
   | r ->
     Format.printf "  %-12s %.3f   (onion steady state)@." "cryptdb"
       r.Attack.Harness.overall.Attack.Attacks.rate
   | exception e ->
     Format.printf "  cryptdb attack failed: %s@." (Printexc.to_string e))
