(* Outlier audit over an encrypted OLAP log plus homomorphic aggregation:
   a retailer shares (encrypted) query log AND database content so a
   provider can (a) flag anomalous queries with Knorr-Ng DB(p,d) outliers
   under the query-result distance, and (b) answer SUM aggregates over a
   Paillier column without the key.

   Run with:  dune exec examples/outlier_audit.exe *)

module M = Distance.Measure

let () =
  (* the retailer's database and a mostly-regular log with planted oddballs *)
  let db = Workload.Gen_db.retail ~seed:"audit" ~rows:120 in
  let regular =
    Workload.Gen_query.retail_log
      { Workload.Gen_query.n = 30; templates = 2; seed = "audit";
        caps = Workload.Gen_query.caps_for_measure M.Result }
  in
  let strays =
    List.map Sqlir.Parser.parse
      [ "SELECT saleid FROM sales WHERE amount > 4995";
        "SELECT storeid FROM stores WHERE size < 150" ]
  in
  let log = regular @ strays in

  let profile = Dpe.Log_profile.of_log log in
  let scheme = Dpe.Selector.select M.Result profile in
  let keyring = Crypto.Keyring.of_passphrase "retail-secret" in
  let enc = Dpe.Encryptor.create keyring scheme in
  let cipher_log = Dpe.Encryptor.encrypt_log enc log in
  let cipher_db = Dpe.Db_encryptor.encrypt_database enc db in
  Format.printf "owner: shared %d encrypted queries and %d encrypted rows@.@."
    (List.length cipher_log) (Minidb.Database.total_rows cipher_db);

  (* provider: result-distance outliers over ciphertext *)
  let ctx = M.ctx_with_db cipher_db in
  let dc = Dpe.Verdict.distance_matrix ctx M.Result cipher_log in
  let params = { Mining.Outlier.p = 0.9; d = 0.95 } in
  let flagged = Mining.Outlier.outlier_indices params dc in
  Format.printf "provider: flagged query indices %s@."
    (String.concat ", " (List.map string_of_int flagged));

  (* owner verification on plaintext *)
  let dp = Dpe.Verdict.distance_matrix (M.ctx_with_db db) M.Result log in
  let expected = Mining.Outlier.outlier_indices params dp in
  Format.printf "owner: plaintext run flags      %s  (identical: %b)@.@."
    (String.concat ", " (List.map string_of_int expected))
    (flagged = expected);
  List.iter
    (fun i ->
      Format.printf "  flagged: %s@." (Sqlir.Printer.to_string (List.nth log i)))
    flagged;

  (* provider: homomorphic SUM over the Paillier side-column.  The 'amount'
     column class depends on this log; aggregate a HOM-classified column *)
  (match
     List.find_opt
       (fun (_, p) -> p.Dpe.Scheme.cls = Dpe.Scheme.C_hom)
       (match scheme.Dpe.Scheme.consts with
        | Dpe.Scheme.Per_attribute (l, _) -> l
        | Dpe.Scheme.Global _ -> [])
   with
   | Some (attr, _) ->
     let ct, n = Dpe.Hom_aggregate.sum_ciphertext enc cipher_db ~rel:"sales" ~attr in
     Format.printf "@.provider: homomorphic SUM(%s) over %d rows (no key needed)@."
       attr n;
     Format.printf "owner: decrypts to %d@." (Dpe.Hom_aggregate.decrypt_sum enc ct)
   | None ->
     (* no SUM in this log: demonstrate on a standalone Paillier column *)
     let rng = Crypto.Keyring.drbg keyring "demo" in
     let pub, sk = Crypto.Paillier.keygen ~bits:512 rng in
     let amounts = Minidb.Table.column_values (Minidb.Database.find_exn db "sales") "amount" in
     let cts =
       List.filter_map
         (fun v -> match v with
            | Minidb.Value.Vint n -> Some (Crypto.Paillier.encrypt_int pub rng n)
            | _ -> None)
         amounts
     in
     let sum_ct = List.fold_left (Crypto.Paillier.add pub) (List.hd cts) (List.tl cts) in
     let plain_sum =
       List.fold_left
         (fun acc v -> match v with Minidb.Value.Vint n -> acc + n | _ -> acc)
         0 amounts
     in
     Format.printf "@.provider: folded %d Paillier ciphertexts into one SUM@."
       (List.length cts);
     Format.printf "owner: decrypts to %d (plaintext sum: %d, match: %b)@."
       (Crypto.Paillier.decrypt_int sk sum_ct) plain_sum
       (Crypto.Paillier.decrypt_int sk sum_ct = plain_sum))
