examples/full_pipeline.ml: Array Crypto Distance Dpe Filename Format List Minidb Mining Sqlir Sys Workload
