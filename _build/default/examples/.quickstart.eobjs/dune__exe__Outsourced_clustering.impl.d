examples/outsourced_clustering.ml: Array Crypto Distance Dpe Format Hashtbl List Mining Sqlir Workload
