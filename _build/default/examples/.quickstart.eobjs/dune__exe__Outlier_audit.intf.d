examples/outlier_audit.mli:
