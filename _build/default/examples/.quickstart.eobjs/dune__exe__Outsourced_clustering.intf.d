examples/outsourced_clustering.mli:
