examples/outlier_audit.ml: Crypto Distance Dpe Format List Minidb Mining Sqlir String Workload
