examples/security_faceoff.ml: Attack Cryptdb Crypto Distance Dpe Format List Printexc Workload
