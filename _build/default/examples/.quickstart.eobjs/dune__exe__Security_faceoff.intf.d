examples/security_faceoff.mli:
