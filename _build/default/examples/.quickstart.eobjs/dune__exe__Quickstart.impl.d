examples/quickstart.ml: Crypto Distance Dpe Format List Sqlir
