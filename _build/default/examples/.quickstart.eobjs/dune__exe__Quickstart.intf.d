examples/quickstart.mli:
