(* Quickstart: encrypt a small SQL query log so that token-based query
   distances are preserved, and verify Definition 1 on it.

   Run with:  dune exec examples/quickstart.exe *)

let log_text =
  [ "SELECT name, age FROM users WHERE city = 'berlin' AND age > 30";
    "SELECT name FROM users WHERE city = 'berlin' AND age > 28";
    "SELECT product, price FROM sales WHERE price BETWEEN 10 AND 99";
    "SELECT product, price FROM sales WHERE price BETWEEN 15 AND 80";
    "SELECT COUNT(*) FROM users WHERE city = 'paris'" ]

let () =
  (* 1. parse the log *)
  let log = List.map Sqlir.Parser.parse log_text in

  (* 2. profile it and derive the DPE scheme for the token measure
        (KIT-DPE steps 2-3, Table I row 1) *)
  let profile = Dpe.Log_profile.of_log log in
  let scheme = Dpe.Selector.select Distance.Measure.Token profile in
  Format.printf "%a@." Dpe.Scheme.pp scheme;

  (* 3. encrypt the log *)
  let keyring = Crypto.Keyring.of_passphrase "correct horse battery staple" in
  let enc = Dpe.Encryptor.create keyring scheme in
  let cipher_log = Dpe.Encryptor.encrypt_log enc log in

  Format.printf "@.plaintext query : %s@." (List.hd log_text);
  Format.printf "encrypted query : %s@.@."
    (Sqlir.Printer.to_string (List.hd cipher_log));

  (* 4. the service provider computes distances on ciphertexts only *)
  let d_plain = Distance.D_token.distance_q (List.nth log 0) (List.nth log 1) in
  let d_cipher =
    Distance.D_token.distance_q (List.nth cipher_log 0) (List.nth cipher_log 1)
  in
  Format.printf "d(Q0, Q1) on plaintext  = %.4f@." d_plain;
  Format.printf "d(Q0, Q1) on ciphertext = %.4f@.@." d_cipher;

  (* 5. verify the DPE property over every pair (Definition 1) *)
  let report = Dpe.Verdict.check_dpe enc Distance.Measure.Token log in
  Format.printf "%a@.@." Dpe.Verdict.pp_report report;

  (* 6. the key owner can invert everything *)
  (match Dpe.Encryptor.decrypt_query enc (List.hd cipher_log) with
   | Ok q ->
     Format.printf "decrypted back  : %s@." (Sqlir.Printer.to_string q)
   | Error e -> Format.printf "decryption failed: %s@." e)
